#include "eval/sparse_ranker.h"

#include <algorithm>
#include <numeric>

#include "eval/scorer.h"
#include "exec/executor.h"

namespace matcn {

double CnScoreBound(const CandidateNetwork& cn,
                    const std::vector<TupleSet>& tuple_sets,
                    const Scorer& scorer) {
  double sum = 0.0;
  for (const CnNode& node : cn.nodes()) {
    if (node.is_free()) continue;
    sum += scorer.MaxTupleScore(tuple_sets[node.tuple_set_index]);
  }
  return sum / static_cast<double>(cn.size());
}

std::vector<Jnt> SparseRanker::TopK(const EvalContext& context,
                                    const RankerOptions& options) {
  CnExecutor executor(context.db, context.schema_graph);
  executor.SetQueryContext(context.tuple_sets);
  Scorer scorer(context.db, context.index, context.query);

  std::vector<double> bounds(context.cns->size());
  std::vector<size_t> order(context.cns->size());
  std::iota(order.begin(), order.end(), 0);
  for (size_t c = 0; c < context.cns->size(); ++c) {
    bounds[c] = CnScoreBound((*context.cns)[c], *context.tuple_sets, scorer);
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return bounds[a] > bounds[b];
  });

  std::vector<Jnt> results;
  for (size_t c : order) {
    if (results.size() >= options.top_k) {
      // k-th best so far (results kept sorted between CNs would be
      // wasteful; track the running threshold instead).
      std::nth_element(results.begin(), results.begin() + options.top_k - 1,
                       results.end(), [](const Jnt& a, const Jnt& b) {
                         return a.score > b.score;
                       });
      if (bounds[c] <= results[options.top_k - 1].score) break;
    }
    std::vector<Jnt> jnts = executor.Execute(
        (*context.cns)[c], static_cast<int>(c), options.per_cn_limit);
    for (Jnt& jnt : jnts) {
      jnt.score = scorer.JntScore(jnt);
      results.push_back(std::move(jnt));
    }
  }
  SortJnts(&results);
  if (results.size() > options.top_k) results.resize(options.top_k);
  return results;
}

}  // namespace matcn
