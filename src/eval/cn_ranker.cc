#include "eval/cn_ranker.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace matcn {

double CandidateNetworkScore(const CandidateNetwork& cn,
                             const std::vector<TupleSet>& tuple_sets,
                             const Scorer& scorer) {
  double log_product = 0.0;
  int non_free = 0;
  for (const CnNode& node : cn.nodes()) {
    if (node.is_free()) continue;
    const TupleSet& ts = tuple_sets[node.tuple_set_index];
    double sum = 0.0;
    for (const TupleId& id : ts.tuples) sum += scorer.TupleScore(id);
    const double avg =
        ts.tuples.empty() ? 0.0 : sum / static_cast<double>(ts.tuples.size());
    if (avg <= 0.0) return 0.0;
    log_product += std::log(avg);
    ++non_free;
  }
  if (non_free == 0) return 0.0;
  const double geo_mean =
      std::exp(log_product / static_cast<double>(non_free));
  return geo_mean / static_cast<double>(cn.size());
}

std::vector<size_t> RankCandidateNetworks(
    const std::vector<CandidateNetwork>& cns,
    const std::vector<TupleSet>& tuple_sets, const Scorer& scorer) {
  std::vector<double> scores(cns.size());
  for (size_t i = 0; i < cns.size(); ++i) {
    scores[i] = CandidateNetworkScore(cns[i], tuple_sets, scorer);
  }
  std::vector<size_t> order(cns.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  return order;
}

}  // namespace matcn
