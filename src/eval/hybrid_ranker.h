#ifndef MATCN_EVAL_HYBRID_RANKER_H_
#define MATCN_EVAL_HYBRID_RANKER_H_

#include "eval/ranker.h"

namespace matcn {

/// The Hybrid algorithm of Hristidis et al. [13] ("Efficient"): estimates
/// the number of results the query will produce and picks the strategy
/// accordingly — Sparse when few results are expected (full per-CN
/// evaluation amortizes well), Global-Pipelined when many are (incremental
/// admission avoids materializing everything). The estimate here is the
/// product of non-free candidate-list sizes per CN, summed over CNs — the
/// same cardinality-product heuristic the original uses in lieu of full
/// join selectivity estimation.
class HybridRanker : public Ranker {
 public:
  std::vector<Jnt> TopK(const EvalContext& context,
                        const RankerOptions& options) override;
  std::string name() const override { return "Hybrid"; }

  /// Exposed for tests: the estimated result volume of the context.
  static double EstimateResults(const EvalContext& context);
};

}  // namespace matcn

#endif  // MATCN_EVAL_HYBRID_RANKER_H_
