#include "eval/scorer.h"

#include <cmath>

#include "indexing/tokenizer.h"

namespace matcn {

Scorer::Scorer(const Database* db, const TermIndex* index,
               const KeywordQuery* query, ScorerOptions options)
    : db_(db), index_(index), query_(query), options_(options) {
  idf_.resize(query_->size());
  const double n = static_cast<double>(index_->total_tuples());
  for (size_t k = 0; k < query_->size(); ++k) {
    const double df =
        static_cast<double>(index_->DocumentFrequency(query_->keyword(k)));
    idf_[k] = std::log((n + 1.0) / (df + 0.5));
  }
}

double Scorer::TupleScore(TupleId id) const {
  auto cached = tuple_score_cache_.find(id.packed());
  if (cached != tuple_score_cache_.end()) return cached->second;

  // Term frequencies of the query keywords within this tuple's text.
  std::vector<int> tf(query_->size(), 0);
  const Relation& rel = db_->relation(id.relation());
  const RelationSchema& schema = rel.schema();
  const Tuple& tuple = rel.tuple(id.row());
  for (uint32_t a = 0; a < schema.num_attributes(); ++a) {
    const Attribute& attr = schema.attribute(a);
    if (attr.type != ValueType::kText || !attr.searchable) continue;
    for (const std::string& token : Tokenizer::Tokenize(tuple[a].AsText())) {
      const int k = query_->KeywordIndex(token);
      if (k >= 0) ++tf[k];
    }
  }
  double score = 0.0;
  for (size_t k = 0; k < query_->size(); ++k) {
    if (tf[k] == 0) continue;
    score += (1.0 + std::log(1.0 + std::log(static_cast<double>(tf[k])))) *
             idf_[k];
  }
  tuple_score_cache_.emplace(id.packed(), score);
  return score;
}

double Scorer::JntScore(const Jnt& jnt) const {
  if (jnt.tuples.empty()) return 0.0;
  double sum = 0.0;
  for (const TupleId& id : jnt.tuples) sum += TupleScore(id);
  const double size = static_cast<double>(jnt.tuples.size());
  switch (options_.normalization) {
    case SizeNormalization::kLinear:
      return sum / size;
    case SizeNormalization::kSqrt:
      return sum / std::sqrt(size);
    case SizeNormalization::kNone:
      return sum;
  }
  return sum / size;
}

double Scorer::MaxTupleScore(const TupleSet& ts) const {
  double best = 0.0;
  for (const TupleId& id : ts.tuples) best = std::max(best, TupleScore(id));
  return best;
}

}  // namespace matcn
