#include "eval/skyline_ranker.h"

#include <memory>
#include <queue>

#include "eval/cn_sweeper.h"
#include "eval/scorer.h"
#include "exec/executor.h"

namespace matcn {

std::vector<Jnt> SkylineSweepRanker::TopK(const EvalContext& context,
                                          const RankerOptions& options) {
  CnExecutor executor(context.db, context.schema_graph);
  executor.SetQueryContext(context.tuple_sets);
  Scorer scorer(context.db, context.index, context.query);

  std::vector<std::unique_ptr<CnSweeper>> sweepers;
  sweepers.reserve(context.cns->size());
  for (const CandidateNetwork& cn : *context.cns) {
    sweepers.push_back(
        std::make_unique<CnSweeper>(&cn, context.tuple_sets, &scorer));
  }

  // Global frontier over CNs, keyed by each sweeper's next bound.
  auto cmp = [&](size_t a, size_t b) {
    return sweepers[a]->NextBound() < sweepers[b]->NextBound();
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(cmp)> frontier(
      cmp);
  for (size_t c = 0; c < sweepers.size(); ++c) {
    if (!sweepers[c]->Exhausted()) frontier.push(c);
  }

  std::vector<Jnt> results;
  while (!frontier.empty() && results.size() < options.top_k) {
    const size_t c = frontier.top();
    frontier.pop();
    if (sweepers[c]->Exhausted()) continue;
    CnSweeper::Combination combo = sweepers[c]->Pop();
    // Verify: does this combination of non-free tuples connect through
    // free tuple-sets? Each completion is a distinct answer with the same
    // exact score (free tuples score zero).
    std::vector<Jnt> verified = executor.ExecuteWithFixed(
        (*context.cns)[c], static_cast<int>(c), combo.fixed,
        options.top_k - results.size());
    for (Jnt& jnt : verified) {
      jnt.score = combo.score;
      results.push_back(std::move(jnt));
      if (results.size() >= options.top_k) break;
    }
    if (!sweepers[c]->Exhausted()) frontier.push(c);
  }
  SortJnts(&results);
  return results;
}

}  // namespace matcn
