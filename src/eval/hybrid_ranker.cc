#include "eval/hybrid_ranker.h"

#include "eval/pipelined_ranker.h"
#include "eval/sparse_ranker.h"

namespace matcn {

double HybridRanker::EstimateResults(const EvalContext& context) {
  double total = 0.0;
  for (const CandidateNetwork& cn : *context.cns) {
    double product = 1.0;
    for (const CnNode& node : cn.nodes()) {
      if (node.is_free()) continue;
      product *= static_cast<double>(
          (*context.tuple_sets)[node.tuple_set_index].tuples.size());
    }
    total += product;
  }
  return total;
}

std::vector<Jnt> HybridRanker::TopK(const EvalContext& context,
                                    const RankerOptions& options) {
  if (EstimateResults(context) <= options.hybrid_threshold) {
    SparseRanker sparse;
    return sparse.TopK(context, options);
  }
  GlobalPipelinedRanker pipelined;
  return pipelined.TopK(context, options);
}

}  // namespace matcn
