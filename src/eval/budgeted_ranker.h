#ifndef MATCN_EVAL_BUDGETED_RANKER_H_
#define MATCN_EVAL_BUDGETED_RANKER_H_

#include <string>
#include <vector>

#include "eval/ranker.h"

namespace matcn {

/// KwS-F-style time-bounded evaluation [Baid et al., VLDB 2010], which the
/// paper discusses as the practical answer to unpredictable CN-evaluation
/// times: spend at most a deadline evaluating CNs (most-promising first,
/// per CNRank order); once it expires, return the partial top-k plus the
/// *unevaluated CNs as query forms* the user can trigger explicitly.
struct BudgetedResult {
  std::vector<Jnt> answers;              // partial top-k, sorted
  std::vector<size_t> evaluated_cns;     // indexes fully evaluated
  std::vector<std::string> query_forms;  // SQL of the unevaluated CNs
  bool deadline_hit = false;
};

class BudgetedRanker {
 public:
  /// `deadline_ms <= 0` means unbounded (degenerates to full evaluation).
  explicit BudgetedRanker(double deadline_ms) : deadline_ms_(deadline_ms) {}

  BudgetedResult TopK(const EvalContext& context,
                      const RankerOptions& options) const;

 private:
  double deadline_ms_;
};

}  // namespace matcn

#endif  // MATCN_EVAL_BUDGETED_RANKER_H_
