#include "eval/cn_sweeper.h"

#include <algorithm>
#include <limits>

namespace matcn {

CnSweeper::CnSweeper(const CandidateNetwork* cn,
                     const std::vector<TupleSet>* tuple_sets,
                     const Scorer* scorer)
    : cn_(cn) {
  denom_ = static_cast<double>(cn_->size());
  for (size_t i = 0; i < cn_->size(); ++i) {
    if (cn_->node(static_cast<int>(i)).is_free()) continue;
    non_free_nodes_.push_back(static_cast<int>(i));
    const TupleSet& ts =
        (*tuple_sets)[cn_->node(static_cast<int>(i)).tuple_set_index];
    std::vector<std::pair<double, TupleId>> scored;
    scored.reserve(ts.tuples.size());
    for (const TupleId& id : ts.tuples) {
      scored.emplace_back(scorer->TupleScore(id), id);
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    std::vector<TupleId> ids;
    std::vector<double> ss;
    ids.reserve(scored.size());
    ss.reserve(scored.size());
    for (const auto& [s, id] : scored) {
      ids.push_back(id);
      ss.push_back(s);
    }
    candidates_.push_back(std::move(ids));
    scores_.push_back(std::move(ss));
  }
  if (!non_free_nodes_.empty()) {
    State initial;
    initial.indexes.assign(non_free_nodes_.size(), 0);
    initial.score = ScoreOf(initial.indexes);
    Push(std::move(initial));
  }
}

double CnSweeper::ScoreOf(const std::vector<uint32_t>& indexes) const {
  double sum = 0.0;
  for (size_t j = 0; j < indexes.size(); ++j) {
    sum += scores_[j][indexes[j]];
  }
  return sum / denom_;
}

void CnSweeper::Push(State state) {
  std::string key;
  for (uint32_t idx : state.indexes) {
    key += std::to_string(idx);
    key += ',';
  }
  if (!visited_.insert(std::move(key)).second) return;
  frontier_.push(std::move(state));
}

double CnSweeper::NextBound() const {
  if (frontier_.empty()) return -std::numeric_limits<double>::infinity();
  return frontier_.top().score;
}

CnSweeper::Combination CnSweeper::Pop() {
  State state = frontier_.top();
  frontier_.pop();
  // Skyline successors: advance one coordinate at a time.
  for (size_t j = 0; j < state.indexes.size(); ++j) {
    if (state.indexes[j] + 1 < candidates_[j].size()) {
      State next = state;
      ++next.indexes[j];
      next.score = ScoreOf(next.indexes);
      Push(std::move(next));
    }
  }
  Combination combo;
  combo.score = state.score;
  combo.fixed.reserve(non_free_nodes_.size());
  for (size_t j = 0; j < non_free_nodes_.size(); ++j) {
    combo.fixed.emplace_back(non_free_nodes_[j],
                             candidates_[j][state.indexes[j]]);
  }
  return combo;
}

}  // namespace matcn
