#ifndef MATCN_EVAL_SCORER_H_
#define MATCN_EVAL_SCORER_H_

#include <unordered_map>
#include <vector>

#include "core/keyword_query.h"
#include "core/tuple_set.h"
#include "exec/jnt.h"
#include "indexing/term_index.h"
#include "storage/database.h"

namespace matcn {

/// How a JNT's summed tuple score is discounted by the JNT's size. The
/// paper's evaluators inherit Efficient's linear normalization; SPARK
/// argues for softer penalties, so the ablation bench compares all three.
enum class SizeNormalization {
  kLinear,  // sum / |T|            (Efficient [13], the default)
  kSqrt,    // sum / sqrt(|T|)      (softer, SPARK-flavored)
  kNone,    // sum                  (no penalty; favors sprawling trees)
};

struct ScorerOptions {
  SizeNormalization normalization = SizeNormalization::kLinear;
};

/// IR-style relevance scoring for tuples and JNTs, following the
/// tf·idf-with-size-normalization family used by Efficient [13] and
/// SPARK [18]:
///
///   tscore(t, Q) = Σ_{k ∈ Q ∩ W(t)} (1 + ln(1 + ln tf_{t,k})) · idf_k
///   idf_k        = ln((N + 1) / (df_k + 0.5))
///   score(T, Q)  = (Σ_{t ∈ T} tscore(t, Q)) / |T|
///
/// where N is the total tuple count and df_k the number of tuples
/// containing k. Larger JNTs are penalized by the size normalization, the
/// standard remedy against sprawling join trees outranking tight answers.
class Scorer {
 public:
  Scorer(const Database* db, const TermIndex* index,
         const KeywordQuery* query, ScorerOptions options = {});

  /// Score of one tuple against the query (0 if it has no keyword).
  /// Memoized per tuple.
  double TupleScore(TupleId id) const;

  /// Combined JNT score: sum of tuple scores normalized by JNT size.
  double JntScore(const Jnt& jnt) const;

  /// Max tuple score within a tuple-set — the upper-bound building block
  /// of the Sparse/Pipelined/Skyline evaluation strategies.
  double MaxTupleScore(const TupleSet& ts) const;

  const KeywordQuery& query() const { return *query_; }
  const ScorerOptions& options() const { return options_; }

 private:
  const Database* db_;
  const TermIndex* index_;
  const KeywordQuery* query_;
  ScorerOptions options_;
  std::vector<double> idf_;  // aligned with query keywords
  mutable std::unordered_map<uint64_t, double> tuple_score_cache_;
};

}  // namespace matcn

#endif  // MATCN_EVAL_SCORER_H_
