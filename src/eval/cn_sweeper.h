#ifndef MATCN_EVAL_CN_SWEEPER_H_
#define MATCN_EVAL_CN_SWEEPER_H_

#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/candidate_network.h"
#include "eval/scorer.h"

namespace matcn {

/// Per-CN skyline iterator (the core of SPARK's Skyline-Sweeping [18]):
/// enumerates combinations of one tuple per *non-free* CN node in
/// non-increasing upper-bound score order, without materializing the
/// combination lattice. Each node's candidates are pre-sorted by tuple
/// score; a state is an index vector into those lists; popping a state
/// pushes its +1 successors (deduplicated), the classic skyline sweep.
///
/// The bound of a combination equals its exact JNT score when it joins:
/// free tuples contain no keyword and contribute zero to the numerator,
/// so bound = Σ non-free tuple scores / |CN|.
class CnSweeper {
 public:
  /// A popped combination: the pinned (node, tuple) pairs plus its score.
  struct Combination {
    std::vector<std::pair<int, TupleId>> fixed;
    double score = 0.0;
  };

  CnSweeper(const CandidateNetwork* cn, const std::vector<TupleSet>* tuple_sets,
            const Scorer* scorer);

  /// Upper bound on the score of any not-yet-returned combination, or
  /// -infinity when exhausted.
  double NextBound() const;

  bool Exhausted() const { return frontier_.empty(); }

  /// Pops the best pending combination. Requires !Exhausted().
  Combination Pop();

 private:
  struct State {
    std::vector<uint32_t> indexes;
    double score = 0.0;
    bool operator<(const State& o) const { return score < o.score; }
  };

  double ScoreOf(const std::vector<uint32_t>& indexes) const;
  void Push(State state);

  const CandidateNetwork* cn_;
  std::vector<int> non_free_nodes_;
  // Per non-free node: candidates sorted by score descending.
  std::vector<std::vector<TupleId>> candidates_;
  std::vector<std::vector<double>> scores_;
  std::priority_queue<State> frontier_;
  std::unordered_set<std::string> visited_;
  double denom_ = 1.0;
};

}  // namespace matcn

#endif  // MATCN_EVAL_CN_SWEEPER_H_
