#ifndef MATCN_EVAL_NAIVE_RANKER_H_
#define MATCN_EVAL_NAIVE_RANKER_H_

#include "eval/ranker.h"

namespace matcn {

/// Reference evaluator: materializes every JNT of every CN, scores them
/// all, and sorts. Exact by construction; the optimized evaluators are
/// property-tested against it.
class NaiveRanker : public Ranker {
 public:
  std::vector<Jnt> TopK(const EvalContext& context,
                        const RankerOptions& options) override;
  std::string name() const override { return "Naive"; }
};

}  // namespace matcn

#endif  // MATCN_EVAL_NAIVE_RANKER_H_
