#include "eval/ranker.h"

#include <algorithm>

namespace matcn {

void SortJnts(std::vector<Jnt>* jnts) {
  std::stable_sort(jnts->begin(), jnts->end(),
                   [](const Jnt& a, const Jnt& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return JntKey(a) < JntKey(b);
                   });
}

}  // namespace matcn
