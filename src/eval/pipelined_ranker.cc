#include "eval/pipelined_ranker.h"

#include <algorithm>
#include <limits>

#include "eval/scorer.h"
#include "exec/executor.h"

namespace matcn {
namespace {

struct CnState {
  const CandidateNetwork* cn = nullptr;
  int cn_index = 0;
  std::vector<int> nodes;                      // non-free node indexes
  std::vector<std::vector<TupleId>> candidates;  // score-sorted per node
  std::vector<std::vector<double>> scores;
  std::vector<size_t> admitted;  // prefix length admitted per node
  double denom = 1.0;

  bool dead = false;

  double Potential() const {
    if (dead) return -std::numeric_limits<double>::infinity();
    double best = -std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < nodes.size(); ++j) {
      if (admitted[j] >= candidates[j].size()) continue;
      double sum = scores[j][admitted[j]];
      for (size_t i = 0; i < nodes.size(); ++i) {
        if (i != j) sum += scores[i][0];
      }
      best = std::max(best, sum / denom);
    }
    return best;
  }
};

}  // namespace

std::vector<Jnt> GlobalPipelinedRanker::TopK(const EvalContext& context,
                                             const RankerOptions& options) {
  CnExecutor executor(context.db, context.schema_graph);
  executor.SetQueryContext(context.tuple_sets);
  Scorer scorer(context.db, context.index, context.query);

  std::vector<CnState> states;
  std::vector<Jnt> results;

  auto verify = [&](const CnState& state,
                    const std::vector<size_t>& pick) {
    std::vector<std::pair<int, TupleId>> fixed;
    double sum = 0.0;
    fixed.reserve(state.nodes.size());
    for (size_t j = 0; j < state.nodes.size(); ++j) {
      fixed.emplace_back(state.nodes[j], state.candidates[j][pick[j]]);
      sum += state.scores[j][pick[j]];
    }
    std::vector<Jnt> verified = executor.ExecuteWithFixed(
        *state.cn, state.cn_index, fixed, options.per_cn_limit);
    for (Jnt& jnt : verified) {
      jnt.score = sum / state.denom;
      results.push_back(std::move(jnt));
    }
  };

  for (size_t c = 0; c < context.cns->size(); ++c) {
    CnState state;
    state.cn = &(*context.cns)[c];
    state.cn_index = static_cast<int>(c);
    state.denom = static_cast<double>(state.cn->size());
    for (size_t i = 0; i < state.cn->size(); ++i) {
      const CnNode& node = state.cn->node(static_cast<int>(i));
      if (node.is_free()) continue;
      state.nodes.push_back(static_cast<int>(i));
      const TupleSet& ts = (*context.tuple_sets)[node.tuple_set_index];
      std::vector<std::pair<double, TupleId>> scored;
      for (const TupleId& id : ts.tuples) {
        scored.emplace_back(scorer.TupleScore(id), id);
      }
      std::stable_sort(scored.begin(), scored.end(),
                       [](const auto& a, const auto& b) {
                         return a.first > b.first;
                       });
      std::vector<TupleId> ids;
      std::vector<double> ss;
      for (const auto& [s, id] : scored) {
        ids.push_back(id);
        ss.push_back(s);
      }
      state.candidates.push_back(std::move(ids));
      state.scores.push_back(std::move(ss));
    }
    if (state.nodes.empty()) continue;
    state.admitted.assign(state.nodes.size(), 1);
    // Admit the top tuple of every list and verify that combination.
    verify(state, std::vector<size_t>(state.nodes.size(), 0));
    states.push_back(std::move(state));
  }

  auto kth_score = [&]() {
    if (results.size() < options.top_k) {
      return -std::numeric_limits<double>::infinity();
    }
    std::nth_element(results.begin(), results.begin() + options.top_k - 1,
                     results.end(), [](const Jnt& a, const Jnt& b) {
                       return a.score > b.score;
                     });
    return results[options.top_k - 1].score;
  };

  while (true) {
    double best = -std::numeric_limits<double>::infinity();
    CnState* best_state = nullptr;
    for (CnState& state : states) {
      const double p = state.Potential();
      if (p > best) {
        best = p;
        best_state = &state;
      }
    }
    if (best_state == nullptr || best <= kth_score()) break;

    // Advance the node realizing the potential: admit its next tuple and
    // join it against the admitted prefixes of the other tuple-sets.
    size_t advance = 0;
    double advance_score = -std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < best_state->nodes.size(); ++j) {
      if (best_state->admitted[j] >= best_state->candidates[j].size()) {
        continue;
      }
      double sum = best_state->scores[j][best_state->admitted[j]];
      for (size_t i = 0; i < best_state->nodes.size(); ++i) {
        if (i != j) sum += best_state->scores[i][0];
      }
      if (sum > advance_score) {
        advance_score = sum;
        advance = j;
      }
    }

    const size_t new_index = best_state->admitted[advance];
    // Enumerate prefix combinations with node `advance` pinned to its
    // newly admitted tuple.
    std::vector<size_t> pick(best_state->nodes.size(), 0);
    pick[advance] = new_index;
    while (true) {
      verify(*best_state, pick);
      size_t pos = 0;
      while (pos < pick.size()) {
        if (pos == advance) {
          ++pos;
          continue;
        }
        if (++pick[pos] < best_state->admitted[pos]) break;
        pick[pos] = 0;
        ++pos;
      }
      if (pos >= pick.size()) break;
    }
    ++best_state->admitted[advance];
    if (best_state->Potential() ==
        -std::numeric_limits<double>::infinity()) {
      best_state->dead = true;
    }
  }

  SortJnts(&results);
  if (results.size() > options.top_k) results.resize(options.top_k);
  return results;
}

}  // namespace matcn
