#ifndef MATCN_EVAL_SPARSE_RANKER_H_
#define MATCN_EVAL_SPARSE_RANKER_H_

#include "eval/ranker.h"

namespace matcn {

/// The Sparse algorithm of Hristidis et al. [13]: evaluate CNs one at a
/// time, in decreasing order of their score upper bound
/// (Σ per-node max tuple score / |CN|), and stop as soon as the next CN's
/// bound cannot beat the current k-th best answer. Efficient when answers
/// are spread thinly across CNs — hence the name.
class SparseRanker : public Ranker {
 public:
  std::vector<Jnt> TopK(const EvalContext& context,
                        const RankerOptions& options) override;
  std::string name() const override { return "Sparse"; }
};

/// Shared helper: upper bound on any JNT score of `cn`.
double CnScoreBound(const CandidateNetwork& cn,
                    const std::vector<TupleSet>& tuple_sets,
                    const class Scorer& scorer);

}  // namespace matcn

#endif  // MATCN_EVAL_SPARSE_RANKER_H_
