#ifndef MATCN_EVAL_PIPELINED_RANKER_H_
#define MATCN_EVAL_PIPELINED_RANKER_H_

#include "eval/ranker.h"

namespace matcn {

/// The Global-Pipelined algorithm of Hristidis et al. [13]: every CN is
/// evaluated incrementally by *admitting* one tuple at a time (in score
/// order) into one of its non-free tuple-sets; each admission joins the
/// new tuple against the already-admitted prefixes of the other tuple-sets
/// to surface new answers. Globally, the CN with the highest potential —
/// the best score any of its unseen combinations could reach — is advanced
/// next, and the search stops once no potential can beat the k-th answer.
class GlobalPipelinedRanker : public Ranker {
 public:
  std::vector<Jnt> TopK(const EvalContext& context,
                        const RankerOptions& options) override;
  std::string name() const override { return "GlobalPipelined"; }
};

}  // namespace matcn

#endif  // MATCN_EVAL_PIPELINED_RANKER_H_
