#ifndef MATCN_DATASETS_GEN_UTIL_H_
#define MATCN_DATASETS_GEN_UTIL_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/database.h"

namespace matcn::gen_internal {

/// Thin helper the generators share: asserts on schema errors (generator
/// bugs are programming errors, not runtime conditions) and keeps row
/// counts scaled.
class Builder {
 public:
  Builder(Database* db, uint64_t seed, double scale)
      : db_(db), rng_(seed), scale_(scale) {}

  Rng& rng() { return rng_; }

  /// scaled(n) = max(1, n * scale).
  int64_t scaled(int64_t n) const {
    const int64_t v = static_cast<int64_t>(static_cast<double>(n) * scale_);
    return v < 1 ? 1 : v;
  }

  void Relation(const std::string& name,
                std::vector<Attribute> attributes) {
    auto r = db_->CreateRelation(RelationSchema(name, std::move(attributes)));
    assert(r.ok());
    (void)r;
  }

  void Fk(const std::string& from_rel, const std::string& from_attr,
          const std::string& to_rel, const std::string& to_attr) {
    Status s = db_->AddForeignKey({from_rel, from_attr, to_rel, to_attr});
    assert(s.ok());
    (void)s;
  }

  void Row(const std::string& relation, Tuple tuple) {
    Status s = db_->Insert(relation, std::move(tuple));
    assert(s.ok());
    (void)s;
  }

  /// Random existing id in [1, count].
  int64_t Ref(int64_t count) {
    return static_cast<int64_t>(rng_.Uniform(1, static_cast<uint64_t>(count)));
  }

 private:
  Database* db_;
  Rng rng_;
  double scale_;
};

/// Shorthand attribute constructors.
inline Attribute Pk(const std::string& name) {
  return Attribute{name, ValueType::kInt, /*is_primary_key=*/true,
                   /*searchable=*/false};
}
inline Attribute IntCol(const std::string& name) {
  return Attribute{name, ValueType::kInt, false, false};
}
inline Attribute TextCol(const std::string& name) {
  return Attribute{name, ValueType::kText, false, true};
}

}  // namespace matcn::gen_internal

#endif  // MATCN_DATASETS_GEN_UTIL_H_
