#include "datasets/vocab.h"

namespace matcn {
namespace {

const std::vector<std::string_view> kFirstNames = {
    "denzel",  "mary",    "james",   "sofia",    "liam",    "emma",
    "noah",    "olivia",  "ethan",   "ava",      "lucas",   "mia",
    "mason",   "isabella", "logan",  "amelia",   "oliver",  "harper",
    "elijah",  "evelyn",  "aiden",   "abigail",  "carlos",  "lucia",
    "marco",   "elena",   "pierre",  "claire",   "hans",    "greta",
    "ivan",    "nadia",   "kenji",   "yuki",     "ravi",    "priya",
    "omar",    "leila",   "diego",   "carmen",   "pedro",   "rosa",
    "viktor",  "anya",    "stefan",  "ingrid",   "paulo",   "beatriz",
};

const std::vector<std::string_view> kLastNames = {
    "washington", "smith",    "johnson",  "garcia",   "miller",
    "davis",      "martinez", "lopez",    "gonzalez", "wilson",
    "anderson",   "thomas",   "taylor",   "moore",    "jackson",
    "martin",     "lee",      "thompson", "white",    "harris",
    "clark",      "lewis",    "walker",   "hall",     "young",
    "king",       "wright",   "scott",    "green",    "baker",
    "adams",      "nelson",   "carter",   "mitchell", "perez",
    "roberts",    "turner",   "phillips", "campbell", "parker",
    "crowe",      "hopkins",  "almeida",  "ferreira", "tanaka",
    "kowalski",   "petrov",   "larsen",
};

const std::vector<std::string_view> kTitleWords = {
    "gangster",  "american", "midnight", "shadow",   "river",
    "glory",     "empire",   "broken",   "silent",   "crimson",
    "winter",    "summer",   "forgotten", "hidden",  "golden",
    "iron",      "storm",    "paradise", "fallen",   "rising",
    "last",      "first",    "dark",     "bright",   "lost",
    "secret",    "wild",     "frozen",   "burning",  "endless",
    "city",      "train",    "letter",   "garden",   "bridge",
    "mountain",  "ocean",    "desert",   "island",   "harbor",
    "night",     "dawn",     "journey",  "promise",  "legacy",
    "redemption", "betrayal", "honor",   "destiny",  "mirror",
};

const std::vector<std::string_view> kPlaceNames = {
    "lisbon",    "manaus",   "berlin",   "kyoto",     "cairo",
    "lima",      "oslo",     "dublin",   "prague",    "vienna",
    "madrid",    "warsaw",   "athens",   "helsinki",  "ottawa",
    "canberra",  "nairobi",  "bogota",   "santiago",  "havana",
    "jakarta",   "manila",   "hanoi",    "seoul",     "taipei",
    "ankara",    "tehran",   "baghdad",  "riyadh",    "amman",
    "tunis",     "accra",    "lagos",    "dakar",     "harare",
    "lusaka",    "quito",    "asuncion", "montevideo", "caracas",
};

const std::vector<std::string_view> kTopicWords = {
    "economy",   "africa",    "europe",    "industry",  "research",
    "database",  "keyword",   "search",    "network",   "algorithm",
    "system",    "query",     "relation",  "index",     "model",
    "analysis",  "theory",    "learning",  "language",  "energy",
    "climate",   "culture",   "history",   "science",   "music",
    "festival",  "election",  "market",    "trade",     "finance",
    "transport", "medicine",  "biology",   "physics",   "chemistry",
    "geology",   "astronomy", "agriculture", "tourism", "education",
};

}  // namespace

const std::vector<std::string_view>& Vocab::FirstNames() {
  return kFirstNames;
}
const std::vector<std::string_view>& Vocab::LastNames() { return kLastNames; }
const std::vector<std::string_view>& Vocab::TitleWords() {
  return kTitleWords;
}
const std::vector<std::string_view>& Vocab::PlaceNames() {
  return kPlaceNames;
}
const std::vector<std::string_view>& Vocab::TopicWords() {
  return kTopicWords;
}

std::string Vocab::PersonName(Rng& rng) {
  std::string name(kFirstNames[rng.Index(kFirstNames.size())]);
  name += " ";
  name += kLastNames[rng.Index(kLastNames.size())];
  return name;
}

std::string Vocab::Title(Rng& rng, int min_words, int max_words) {
  const int n = static_cast<int>(
      rng.Uniform(static_cast<uint64_t>(min_words),
                  static_cast<uint64_t>(max_words)));
  std::string title;
  for (int i = 0; i < n; ++i) {
    if (i > 0) title += " ";
    title += kTitleWords[rng.Index(kTitleWords.size())];
  }
  return title;
}

std::string Vocab::ZipfText(Rng& rng, int words) {
  // One shared sampler over topic words plus a synthetic tail of 400.
  static const ZipfSampler sampler(kTopicWords.size() + 400, 1.0);
  std::string text;
  for (int i = 0; i < words; ++i) {
    if (i > 0) text += " ";
    const size_t rank = sampler.Sample(rng);
    if (rank < kTopicWords.size()) {
      text += kTopicWords[rank];
    } else {
      text += "w" + std::to_string(rank - kTopicWords.size());
    }
  }
  return text;
}

}  // namespace matcn
