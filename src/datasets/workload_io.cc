#include "datasets/workload_io.h"

#include <fstream>
#include <sstream>

namespace matcn {

Status SaveWorkload(const std::vector<WorkloadQuery>& workload,
                    const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return Status::IOError("cannot open for write: " + path);
  os << "matcn-workload v1\n";
  for (const WorkloadQuery& wq : workload) {
    os << "query " << wq.id;
    for (const std::string& kw : wq.query.keywords()) os << " " << kw;
    os << "\n";
    for (const std::string& key : wq.golden) {
      os << "golden " << key << "\n";
    }
  }
  if (!os) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<WorkloadQuery>> LoadWorkload(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::IOError("cannot open: " + path);
  std::string line;
  if (!std::getline(is, line) || line != "matcn-workload v1") {
    return Status::IOError("bad workload header: " + path);
  }
  std::vector<WorkloadQuery> out;
  while (std::getline(is, line)) {
    std::istringstream ss(line);
    std::string tag;
    ss >> tag;
    if (tag == "query") {
      WorkloadQuery wq;
      ss >> wq.id;
      std::vector<std::string> kws;
      std::string kw;
      while (ss >> kw) kws.push_back(kw);
      Result<KeywordQuery> q = KeywordQuery::FromKeywords(std::move(kws));
      if (!q.ok()) {
        return Status::IOError("bad query line in " + path + ": " + line);
      }
      wq.query = std::move(*q);
      out.push_back(std::move(wq));
    } else if (tag == "golden") {
      if (out.empty()) {
        return Status::IOError("golden before any query in " + path);
      }
      std::string key;
      ss >> key;
      out.back().golden.insert(key);
      out.back().num_relevant = out.back().golden.size();
    } else if (!tag.empty()) {
      return Status::IOError("unknown tag '" + tag + "' in " + path);
    }
  }
  return out;
}

}  // namespace matcn
