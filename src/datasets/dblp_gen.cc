#include "datasets/gen_util.h"
#include "datasets/generators.h"
#include "datasets/vocab.h"

namespace matcn {

using gen_internal::Builder;
using gen_internal::IntCol;
using gen_internal::Pk;
using gen_internal::TextCol;

// DBLP benchmark schema: AUTHOR, PUB, AUTHORED, JOURNAL, PROC, CITE —
// 6 relations, 6 RICs (authored x2, pub->journal, pub->proc, cite x2).
Database MakeDblp(uint64_t seed, double scale) {
  Database db;
  Builder b(&db, seed, scale);

  b.Relation("AUTHOR", {Pk("id"), TextCol("name")});
  b.Relation("JOURNAL", {Pk("id"), TextCol("name")});
  b.Relation("PROC", {Pk("id"), TextCol("name"), IntCol("year")});
  b.Relation("PUB", {Pk("id"), TextCol("title"), IntCol("year"),
                     IntCol("journal_id"), IntCol("proc_id")});
  b.Relation("AUTHORED", {Pk("id"), IntCol("author_id"), IntCol("pub_id")});
  b.Relation("CITE", {Pk("id"), IntCol("from_pub"), IntCol("to_pub")});
  b.Fk("PUB", "journal_id", "JOURNAL", "id");
  b.Fk("PUB", "proc_id", "PROC", "id");
  b.Fk("AUTHORED", "author_id", "AUTHOR", "id");
  b.Fk("AUTHORED", "pub_id", "PUB", "id");
  b.Fk("CITE", "from_pub", "PUB", "id");
  b.Fk("CITE", "to_pub", "PUB", "id");  // parallel edge (collapsed in G_u)

  const int64_t num_authors = b.scaled(2500);
  const int64_t num_journals = b.scaled(80);
  const int64_t num_procs = b.scaled(200);
  const int64_t num_pubs = b.scaled(4000);

  for (int64_t i = 1; i <= num_authors; ++i) {
    b.Row("AUTHOR", {Value(i), Value(Vocab::PersonName(b.rng()))});
  }
  for (int64_t i = 1; i <= num_journals; ++i) {
    b.Row("JOURNAL",
          {Value(i), Value("journal of " + Vocab::ZipfText(b.rng(), 2))});
  }
  for (int64_t i = 1; i <= num_procs; ++i) {
    b.Row("PROC",
          {Value(i), Value("conference on " + Vocab::ZipfText(b.rng(), 2)),
           Value(static_cast<int64_t>(b.rng().Uniform(1980, 2017)))});
  }
  for (int64_t i = 1; i <= num_pubs; ++i) {
    b.Row("PUB", {Value(i), Value(Vocab::ZipfText(b.rng(), 5)),
                  Value(static_cast<int64_t>(b.rng().Uniform(1980, 2017))),
                  Value(b.Ref(num_journals)), Value(b.Ref(num_procs))});
  }
  for (int64_t i = 1; i <= b.scaled(9000); ++i) {
    b.Row("AUTHORED",
          {Value(i), Value(b.Ref(num_authors)), Value(b.Ref(num_pubs))});
  }
  for (int64_t i = 1; i <= b.scaled(6000); ++i) {
    b.Row("CITE", {Value(i), Value(b.Ref(num_pubs)), Value(b.Ref(num_pubs))});
  }
  return db;
}

}  // namespace matcn
