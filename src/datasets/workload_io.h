#ifndef MATCN_DATASETS_WORKLOAD_IO_H_
#define MATCN_DATASETS_WORKLOAD_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datasets/workload.h"

namespace matcn {

/// Text persistence for query workloads, so benchmark runs can pin an
/// exact query set (with its relevance judgements) to a file and rerun it
/// later — the role the published Coffman-Weaver query lists play for the
/// paper. The format is line-oriented:
///
///   matcn-workload v1
///   query <id> <kw1> <kw2> ...
///   golden <jnt-key> ...
///
/// JNT keys are the canonical comma-joined packed tuple ids of JntKey().
Status SaveWorkload(const std::vector<WorkloadQuery>& workload,
                    const std::string& path);

Result<std::vector<WorkloadQuery>> LoadWorkload(const std::string& path);

}  // namespace matcn

#endif  // MATCN_DATASETS_WORKLOAD_IO_H_
