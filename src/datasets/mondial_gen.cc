#include "datasets/gen_util.h"
#include "datasets/generators.h"
#include "datasets/vocab.h"

namespace matcn {

using gen_internal::Builder;
using gen_internal::IntCol;
using gen_internal::Pk;
using gen_internal::TextCol;

// Mondial: 28 relations and the densest referential structure of the five
// datasets (the original declares 104 RICs, many of them composite; this
// reproduction keeps all 28 relations and 40 single-attribute RICs — still
// by far the most intricate schema graph, which is what drives Mondial's
// high query-match counts in Table 5).
Database MakeMondial(uint64_t seed, double scale) {
  Database db;
  Builder b(&db, seed, scale);

  b.Relation("CONTINENT", {Pk("id"), TextCol("name")});
  b.Relation("COUNTRY",
             {Pk("id"), TextCol("name"), TextCol("capital"), IntCol("area")});
  b.Relation("PROVINCE", {Pk("id"), TextCol("name"), IntCol("country_id")});
  b.Relation("CITY", {Pk("id"), TextCol("name"), IntCol("country_id"),
                      IntCol("province_id"), IntCol("population")});
  b.Relation("ORGANIZATION",
             {Pk("id"), TextCol("name"), TextCol("abbreviation"),
              IntCol("city_id")});
  b.Relation("IS_MEMBER", {Pk("id"), IntCol("country_id"), IntCol("org_id"),
                           TextCol("type")});
  b.Relation("LANGUAGE",
             {Pk("id"), IntCol("country_id"), TextCol("name")});
  b.Relation("RELIGION", {Pk("id"), IntCol("country_id"), TextCol("name")});
  b.Relation("ETHNIC_GROUP",
             {Pk("id"), IntCol("country_id"), TextCol("name")});
  b.Relation("ECONOMY",
             {Pk("id"), IntCol("country_id"), TextCol("summary")});
  b.Relation("POPULATION",
             {Pk("id"), IntCol("country_id"), TextCol("notes")});
  b.Relation("POLITICS",
             {Pk("id"), IntCol("country_id"), TextCol("government")});
  b.Relation("BORDERS", {Pk("id"), IntCol("country1_id"),
                         IntCol("country2_id"), IntCol("length")});
  b.Relation("ENCOMPASSES", {Pk("id"), IntCol("country_id"),
                             IntCol("continent_id"), IntCol("percentage")});
  b.Relation("RIVER", {Pk("id"), TextCol("name"), IntCol("length")});
  b.Relation("LAKE", {Pk("id"), TextCol("name"), IntCol("area")});
  b.Relation("SEA", {Pk("id"), TextCol("name"), IntCol("depth")});
  b.Relation("ISLAND", {Pk("id"), TextCol("name"), IntCol("area")});
  b.Relation("MOUNTAIN", {Pk("id"), TextCol("name"), IntCol("height")});
  b.Relation("DESERT", {Pk("id"), TextCol("name"), IntCol("area")});
  b.Relation("GEO_RIVER", {Pk("id"), IntCol("river_id"),
                           IntCol("country_id"), IntCol("province_id")});
  b.Relation("GEO_LAKE", {Pk("id"), IntCol("lake_id"), IntCol("country_id"),
                          IntCol("province_id")});
  b.Relation("GEO_SEA", {Pk("id"), IntCol("sea_id"), IntCol("country_id"),
                         IntCol("province_id")});
  b.Relation("GEO_ISLAND", {Pk("id"), IntCol("island_id"),
                            IntCol("country_id"), IntCol("province_id")});
  b.Relation("GEO_MOUNTAIN", {Pk("id"), IntCol("mountain_id"),
                              IntCol("country_id"), IntCol("province_id")});
  b.Relation("GEO_DESERT", {Pk("id"), IntCol("desert_id"),
                            IntCol("country_id"), IntCol("province_id")});
  b.Relation("LOCATED", {Pk("id"), IntCol("city_id"), IntCol("river_id"),
                         IntCol("lake_id"), IntCol("sea_id")});
  b.Relation("AIRPORT", {Pk("id"), TextCol("name"), IntCol("city_id"),
                         IntCol("country_id")});

  b.Fk("PROVINCE", "country_id", "COUNTRY", "id");
  b.Fk("CITY", "country_id", "COUNTRY", "id");
  b.Fk("CITY", "province_id", "PROVINCE", "id");
  b.Fk("ORGANIZATION", "city_id", "CITY", "id");
  b.Fk("IS_MEMBER", "country_id", "COUNTRY", "id");
  b.Fk("IS_MEMBER", "org_id", "ORGANIZATION", "id");
  b.Fk("LANGUAGE", "country_id", "COUNTRY", "id");
  b.Fk("RELIGION", "country_id", "COUNTRY", "id");
  b.Fk("ETHNIC_GROUP", "country_id", "COUNTRY", "id");
  b.Fk("ECONOMY", "country_id", "COUNTRY", "id");
  b.Fk("POPULATION", "country_id", "COUNTRY", "id");
  b.Fk("POLITICS", "country_id", "COUNTRY", "id");
  b.Fk("BORDERS", "country1_id", "COUNTRY", "id");
  b.Fk("BORDERS", "country2_id", "COUNTRY", "id");  // parallel (collapsed)
  b.Fk("ENCOMPASSES", "country_id", "COUNTRY", "id");
  b.Fk("ENCOMPASSES", "continent_id", "CONTINENT", "id");
  b.Fk("GEO_RIVER", "river_id", "RIVER", "id");
  b.Fk("GEO_RIVER", "country_id", "COUNTRY", "id");
  b.Fk("GEO_RIVER", "province_id", "PROVINCE", "id");
  b.Fk("GEO_LAKE", "lake_id", "LAKE", "id");
  b.Fk("GEO_LAKE", "country_id", "COUNTRY", "id");
  b.Fk("GEO_LAKE", "province_id", "PROVINCE", "id");
  b.Fk("GEO_SEA", "sea_id", "SEA", "id");
  b.Fk("GEO_SEA", "country_id", "COUNTRY", "id");
  b.Fk("GEO_SEA", "province_id", "PROVINCE", "id");
  b.Fk("GEO_ISLAND", "island_id", "ISLAND", "id");
  b.Fk("GEO_ISLAND", "country_id", "COUNTRY", "id");
  b.Fk("GEO_ISLAND", "province_id", "PROVINCE", "id");
  b.Fk("GEO_MOUNTAIN", "mountain_id", "MOUNTAIN", "id");
  b.Fk("GEO_MOUNTAIN", "country_id", "COUNTRY", "id");
  b.Fk("GEO_MOUNTAIN", "province_id", "PROVINCE", "id");
  b.Fk("GEO_DESERT", "desert_id", "DESERT", "id");
  b.Fk("GEO_DESERT", "country_id", "COUNTRY", "id");
  b.Fk("GEO_DESERT", "province_id", "PROVINCE", "id");
  b.Fk("LOCATED", "city_id", "CITY", "id");
  b.Fk("LOCATED", "river_id", "RIVER", "id");
  b.Fk("LOCATED", "lake_id", "LAKE", "id");
  b.Fk("LOCATED", "sea_id", "SEA", "id");
  b.Fk("AIRPORT", "city_id", "CITY", "id");
  b.Fk("AIRPORT", "country_id", "COUNTRY", "id");

  const std::vector<std::string> continents = {"europe", "asia", "africa",
                                               "america", "oceania"};
  for (size_t i = 0; i < continents.size(); ++i) {
    b.Row("CONTINENT",
          {Value(static_cast<int64_t>(i + 1)), Value(continents[i])});
  }

  const int64_t num_countries = b.scaled(150);
  const int64_t num_provinces = b.scaled(400);
  const int64_t num_cities = b.scaled(700);
  const int64_t num_orgs = b.scaled(60);
  const int64_t num_features = b.scaled(70);  // per geographic kind

  auto place = [&](Rng& rng) {
    std::string name(Vocab::PlaceNames()[rng.Index(Vocab::PlaceNames().size())]);
    if (rng.Bernoulli(0.5)) {
      name += " ";
      name += Vocab::TopicWords()[rng.Index(Vocab::TopicWords().size())];
    }
    return name;
  };

  for (int64_t i = 1; i <= num_countries; ++i) {
    b.Row("COUNTRY", {Value(i), Value(place(b.rng())), Value(place(b.rng())),
                      Value(static_cast<int64_t>(b.rng().Uniform(1, 17000)))});
  }
  for (int64_t i = 1; i <= num_provinces; ++i) {
    b.Row("PROVINCE",
          {Value(i), Value(place(b.rng())), Value(b.Ref(num_countries))});
  }
  for (int64_t i = 1; i <= num_cities; ++i) {
    b.Row("CITY", {Value(i), Value(place(b.rng())), Value(b.Ref(num_countries)),
                   Value(b.Ref(num_provinces)),
                   Value(static_cast<int64_t>(b.rng().Uniform(1000, 9000000)))});
  }
  for (int64_t i = 1; i <= num_orgs; ++i) {
    b.Row("ORGANIZATION",
          {Value(i), Value(Vocab::ZipfText(b.rng(), 3)),
           Value("org" + std::to_string(i)), Value(b.Ref(num_cities))});
  }
  for (int64_t i = 1; i <= b.scaled(300); ++i) {
    b.Row("IS_MEMBER", {Value(i), Value(b.Ref(num_countries)),
                        Value(b.Ref(num_orgs)), Value("member")});
  }
  const std::vector<std::string> langs = {
      "portuguese", "english", "spanish", "french",  "german",
      "mandarin",   "arabic",  "hindi",   "swahili", "russian"};
  for (int64_t i = 1; i <= b.scaled(200); ++i) {
    b.Row("LANGUAGE", {Value(i), Value(b.Ref(num_countries)),
                       Value(langs[b.rng().Index(langs.size())])});
  }
  const std::vector<std::string> religions = {
      "catholic", "protestant", "muslim", "buddhist", "hindu", "jewish"};
  for (int64_t i = 1; i <= b.scaled(180); ++i) {
    b.Row("RELIGION", {Value(i), Value(b.Ref(num_countries)),
                       Value(religions[b.rng().Index(religions.size())])});
  }
  for (int64_t i = 1; i <= b.scaled(180); ++i) {
    b.Row("ETHNIC_GROUP", {Value(i), Value(b.Ref(num_countries)),
                           Value(Vocab::ZipfText(b.rng(), 1))});
  }
  for (int64_t i = 1; i <= num_countries; ++i) {
    b.Row("ECONOMY",
          {Value(i), Value(i), Value(Vocab::ZipfText(b.rng(), 6))});
    b.Row("POPULATION",
          {Value(i), Value(i), Value(Vocab::ZipfText(b.rng(), 4))});
    b.Row("POLITICS",
          {Value(i), Value(i), Value(Vocab::ZipfText(b.rng(), 3))});
  }
  for (int64_t i = 1; i <= b.scaled(250); ++i) {
    b.Row("BORDERS", {Value(i), Value(b.Ref(num_countries)),
                      Value(b.Ref(num_countries)),
                      Value(static_cast<int64_t>(b.rng().Uniform(5, 4000)))});
  }
  for (int64_t i = 1; i <= b.scaled(170); ++i) {
    b.Row("ENCOMPASSES",
          {Value(i), Value(b.Ref(num_countries)),
           Value(b.Ref(static_cast<int64_t>(continents.size()))),
           Value(static_cast<int64_t>(b.rng().Uniform(1, 100)))});
  }

  const std::vector<std::string> kinds = {"RIVER", "LAKE",     "SEA",
                                          "ISLAND", "MOUNTAIN", "DESERT"};
  for (const std::string& kind : kinds) {
    for (int64_t i = 1; i <= num_features; ++i) {
      b.Row(kind, {Value(i), Value(place(b.rng())),
                   Value(static_cast<int64_t>(b.rng().Uniform(10, 7000)))});
    }
    for (int64_t i = 1; i <= b.scaled(120); ++i) {
      b.Row("GEO_" + kind, {Value(i), Value(b.Ref(num_features)),
                            Value(b.Ref(num_countries)),
                            Value(b.Ref(num_provinces))});
    }
  }
  for (int64_t i = 1; i <= b.scaled(150); ++i) {
    b.Row("LOCATED",
          {Value(i), Value(b.Ref(num_cities)), Value(b.Ref(num_features)),
           Value(b.Ref(num_features)), Value(b.Ref(num_features))});
  }
  for (int64_t i = 1; i <= b.scaled(100); ++i) {
    b.Row("AIRPORT", {Value(i), Value(place(b.rng()) + " airport"),
                      Value(b.Ref(num_cities)), Value(b.Ref(num_countries))});
  }
  return db;
}

}  // namespace matcn
