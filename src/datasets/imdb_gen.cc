#include "datasets/gen_util.h"
#include "datasets/generators.h"
#include "datasets/vocab.h"

namespace matcn {

using gen_internal::Builder;
using gen_internal::IntCol;
using gen_internal::Pk;
using gen_internal::TextCol;

// Schema per paper Figure 3: CHAR, MOV, CAST, PER, ROLE; CAST references
// the other four (4 RICs). Default scale ~20k tuples.
Database MakeImdb(uint64_t seed, double scale) {
  Database db;
  Builder b(&db, seed, scale);

  b.Relation("CHAR", {Pk("id"), TextCol("name")});
  b.Relation("MOV", {Pk("id"), TextCol("title"), IntCol("year")});
  b.Relation("CAST", {Pk("id"), IntCol("mid"), IntCol("pid"),
                      IntCol("chid"), IntCol("rid"), TextCol("note")});
  b.Relation("PER", {Pk("id"), TextCol("name")});
  b.Relation("ROLE", {Pk("id"), TextCol("name")});
  b.Fk("CAST", "mid", "MOV", "id");
  b.Fk("CAST", "pid", "PER", "id");
  b.Fk("CAST", "chid", "CHAR", "id");
  b.Fk("CAST", "rid", "ROLE", "id");

  const int64_t num_persons = b.scaled(4000);
  const int64_t num_movies = b.scaled(3000);
  const int64_t num_chars = b.scaled(1500);
  const int64_t num_cast = b.scaled(10000);

  // Roles: a fixed realistic pool (not scaled).
  const std::vector<std::string> roles = {
      "actor",   "actress", "director", "producer", "writer",
      "composer", "editor", "stunt double", "extra", "narrator"};
  for (size_t i = 0; i < roles.size(); ++i) {
    b.Row("ROLE", {Value(static_cast<int64_t>(i + 1)), Value(roles[i])});
  }

  // Persons; id 1 is the running example's entity.
  b.Row("PER", {Value(int64_t{1}), Value("Denzel Washington")});
  for (int64_t i = 2; i <= num_persons; ++i) {
    b.Row("PER", {Value(i), Value(Vocab::PersonName(b.rng()))});
  }

  // Movies; id 1 is the running example's entity.
  b.Row("MOV", {Value(int64_t{1}), Value("American Gangster"),
                Value(int64_t{2007})});
  for (int64_t i = 2; i <= num_movies; ++i) {
    b.Row("MOV", {Value(i), Value(Vocab::Title(b.rng(), 1, 3)),
                  Value(static_cast<int64_t>(b.rng().Uniform(1930, 2017)))});
  }

  for (int64_t i = 1; i <= num_chars; ++i) {
    // Characters mix invented names and title-like epithets.
    std::string name = b.rng().Bernoulli(0.5)
                           ? Vocab::PersonName(b.rng())
                           : Vocab::Title(b.rng(), 1, 2);
    b.Row("CHAR", {Value(i), Value(std::move(name))});
  }

  // Cast entry 1 connects the planted entities.
  b.Row("CAST", {Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{1}),
                 Value(b.Ref(num_chars)), Value(int64_t{1}),
                 Value("lead credit")});
  for (int64_t i = 2; i <= num_cast; ++i) {
    std::string note =
        b.rng().Bernoulli(0.3) ? Vocab::ZipfText(b.rng(), 3) : std::string();
    b.Row("CAST",
          {Value(i), Value(b.Ref(num_movies)), Value(b.Ref(num_persons)),
           Value(b.Ref(num_chars)),
           Value(b.Ref(static_cast<int64_t>(roles.size()))),
           Value(std::move(note))});
  }
  return db;
}

}  // namespace matcn
