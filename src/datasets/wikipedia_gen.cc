#include "datasets/gen_util.h"
#include "datasets/generators.h"
#include "datasets/vocab.h"

namespace matcn {

using gen_internal::Builder;
using gen_internal::IntCol;
using gen_internal::Pk;
using gen_internal::TextCol;

// Wikipedia benchmark schema (Coffman & Weaver): PAGE, REVISION, TEXT,
// USERACCT, PAGELINKS, CATEGORYLINKS — 6 relations, 5 RICs.
Database MakeWikipedia(uint64_t seed, double scale) {
  Database db;
  Builder b(&db, seed, scale);

  b.Relation("PAGE", {Pk("id"), TextCol("title")});
  b.Relation("USERACCT", {Pk("id"), TextCol("name")});
  b.Relation("REVISION", {Pk("id"), IntCol("page_id"), IntCol("user_id"),
                          TextCol("comment")});
  b.Relation("TEXT", {Pk("id"), IntCol("rev_id"), TextCol("body")});
  b.Relation("PAGELINKS",
             {Pk("id"), IntCol("from_page"), TextCol("target_title")});
  b.Relation("CATEGORYLINKS",
             {Pk("id"), IntCol("page_id"), TextCol("category")});
  b.Fk("REVISION", "page_id", "PAGE", "id");
  b.Fk("REVISION", "user_id", "USERACCT", "id");
  b.Fk("TEXT", "rev_id", "REVISION", "id");
  b.Fk("PAGELINKS", "from_page", "PAGE", "id");
  b.Fk("CATEGORYLINKS", "page_id", "PAGE", "id");

  const int64_t num_pages = b.scaled(1500);
  const int64_t num_users = b.scaled(400);
  const int64_t num_revisions = b.scaled(3000);

  for (int64_t i = 1; i <= num_pages; ++i) {
    b.Row("PAGE", {Value(i), Value(Vocab::Title(b.rng(), 1, 3))});
  }
  for (int64_t i = 1; i <= num_users; ++i) {
    b.Row("USERACCT", {Value(i), Value(Vocab::PersonName(b.rng()))});
  }
  for (int64_t i = 1; i <= num_revisions; ++i) {
    b.Row("REVISION", {Value(i), Value(b.Ref(num_pages)),
                       Value(b.Ref(num_users)),
                       Value(Vocab::ZipfText(b.rng(), 3))});
    b.Row("TEXT", {Value(i), Value(i), Value(Vocab::ZipfText(b.rng(), 12))});
  }
  for (int64_t i = 1; i <= b.scaled(2000); ++i) {
    b.Row("PAGELINKS", {Value(i), Value(b.Ref(num_pages)),
                        Value(Vocab::Title(b.rng(), 1, 2))});
  }
  for (int64_t i = 1; i <= b.scaled(1200); ++i) {
    b.Row("CATEGORYLINKS", {Value(i), Value(b.Ref(num_pages)),
                            Value(Vocab::ZipfText(b.rng(), 2))});
  }
  return db;
}

}  // namespace matcn
