#include "datasets/workload.h"

#include <algorithm>
#include <unordered_set>

#include "baseline/cngen.h"
#include "common/rng.h"
#include "core/tsfind.h"
#include "exec/executor.h"
#include "indexing/stopwords.h"
#include "indexing/tokenizer.h"

namespace matcn {
namespace {

/// Distinct non-stopword tokens of a tuple's searchable text.
std::vector<std::string> TupleTokens(const Database& db, TupleId id) {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  const Relation& rel = db.relation(id.relation());
  const RelationSchema& schema = rel.schema();
  const Tuple& tuple = rel.tuple(id.row());
  for (uint32_t a = 0; a < schema.num_attributes(); ++a) {
    const Attribute& attr = schema.attribute(a);
    if (attr.type != ValueType::kText || !attr.searchable) continue;
    for (std::string& t : Tokenizer::Tokenize(tuple[a].AsText())) {
      if (IsStopword(t)) continue;
      if (seen.insert(t).second) out.push_back(std::move(t));
    }
  }
  return out;
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(const Database* db,
                                     const SchemaGraph* schema_graph,
                                     const TermIndex* index)
    : db_(db), schema_graph_(schema_graph), index_(index) {}

void WorkloadGenerator::ComputeAnswerSets(const KeywordQuery& query,
                                          int golden_t_max,
                                          GoldenStandard* all,
                                          GoldenStandard* min_size) const {
  all->clear();
  min_size->clear();
  std::vector<TupleSet> tuple_sets = TupleSetFinder::FindMem(*index_, query);
  TupleSetGraph ts_graph(schema_graph_, &tuple_sets);
  CnGenOptions options;
  options.t_max = golden_t_max;
  CnGenResult cns = CnGen(query, ts_graph, options);

  CnExecutor executor(db_, schema_graph_);
  executor.SetQueryContext(&tuple_sets);
  size_t best = SIZE_MAX;
  std::vector<Jnt> jnts;
  for (size_t c = 0; c < cns.cns.size(); ++c) {
    for (Jnt& jnt :
         executor.Execute(cns.cns[c], static_cast<int>(c), 50'000)) {
      best = std::min(best, jnt.tuples.size());
      jnts.push_back(std::move(jnt));
    }
  }
  for (const Jnt& jnt : jnts) {
    all->insert(JntKey(jnt));
    if (jnt.tuples.size() == best) min_size->insert(JntKey(jnt));
  }
}

GoldenStandard WorkloadGenerator::ComputeGolden(const KeywordQuery& query,
                                                int golden_t_max,
                                                size_t* num_relevant) const {
  GoldenStandard all, min_size;
  ComputeAnswerSets(query, golden_t_max, &all, &min_size);
  if (num_relevant != nullptr) *num_relevant = min_size.size();
  return min_size;
}

std::vector<WorkloadQuery> WorkloadGenerator::Generate(
    const WorkloadOptions& options) const {
  Rng rng(options.seed);
  std::vector<WorkloadQuery> out;

  // Relation sampling weighted by tuple count.
  std::vector<RelationId> weighted;
  for (RelationId r = 0; r < db_->num_relations(); ++r) {
    const size_t weight = 1 + db_->relation(r).num_tuples() / 64;
    for (size_t i = 0; i < weight; ++i) weighted.push_back(r);
  }

  auto random_tuple = [&]() -> TupleId {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const RelationId r = weighted[rng.Index(weighted.size())];
      const Relation& rel = db_->relation(r);
      if (rel.num_tuples() == 0) continue;
      TupleId id(r, rng.Uniform(0, rel.num_tuples() - 1));
      if (!TupleTokens(*db_, id).empty()) return id;
    }
    return TupleId(0, 0);
  };

  // Follows one FK of `id`'s relation to the tuple it references, if any.
  auto joined_neighbor = [&](TupleId id) -> std::vector<TupleId> {
    std::vector<TupleId> neighbors;
    const RelationId r = id.relation();
    const Tuple& tuple = db_->tuple(id);
    for (RelationId other : schema_graph_->Neighbors(r)) {
      const SchemaEdge* edge = schema_graph_->Edge(r, other);
      if (edge->holder != r) continue;  // only follow outgoing FKs (cheap)
      const Value& key = tuple[edge->holder_attribute];
      const Relation& ref = db_->relation(edge->referenced);
      for (uint64_t row = 0; row < ref.num_tuples(); ++row) {
        if (ref.tuple(row)[edge->referenced_attribute] == key) {
          neighbors.emplace_back(edge->referenced, row);
          break;
        }
      }
    }
    return neighbors;
  };

  // Picks `n` keywords from a token pool. Half the picks take the rarest
  // unused token (precise entity words); the other half take a random one
  // (possibly frequent), which is what makes queries ambiguous — the same
  // keywords match distractor tuples the systems must rank below the
  // intended answer.
  auto pick_keywords = [&](const std::vector<std::string>& pool, size_t n,
                           std::vector<std::string>* kws) {
    std::vector<std::string> by_rarity = pool;
    std::sort(by_rarity.begin(), by_rarity.end(),
              [&](const std::string& a, const std::string& b) {
                return index_->DocumentFrequency(a) <
                       index_->DocumentFrequency(b);
              });
    size_t rare_cursor = 0;
    int guard = 0;
    while (kws->size() < n && ++guard < 64) {
      std::string pick;
      if (rng.Bernoulli(0.5)) {
        while (rare_cursor < by_rarity.size() &&
               std::find(kws->begin(), kws->end(),
                         by_rarity[rare_cursor]) != kws->end()) {
          ++rare_cursor;
        }
        if (rare_cursor >= by_rarity.size()) break;
        pick = by_rarity[rare_cursor++];
      } else if (!pool.empty()) {
        pick = pool[rng.Index(pool.size())];
      }
      if (!pick.empty() &&
          std::find(kws->begin(), kws->end(), pick) == kws->end()) {
        kws->push_back(std::move(pick));
      }
    }
  };

  size_t attempts = 0;
  const size_t max_attempts = options.num_queries * 50 + 200;
  while (out.size() < options.num_queries && ++attempts < max_attempts) {
    size_t num_keywords;
    bool pair_target;
    switch (options.style) {
      case QueryStyle::kCoffmanWeaver:
        num_keywords = 1 + rng.Uniform(0, 2);  // 1-3, avg 2
        pair_target = rng.Bernoulli(0.35);
        break;
      case QueryStyle::kSpark:
        num_keywords = 2 + rng.Uniform(0, 1);  // 2-3
        pair_target = rng.Bernoulli(0.7);
        break;
      case QueryStyle::kInex:
      default:
        num_keywords = 2 + rng.Uniform(0, 2);  // 2-4
        pair_target = rng.Bernoulli(0.5);
        break;
    }

    const TupleId primary = random_tuple();
    Jnt target;
    target.tuples = {primary};
    std::vector<std::string> kws;
    if (pair_target && num_keywords >= 2) {
      std::vector<TupleId> neighbors = joined_neighbor(primary);
      if (!neighbors.empty()) {
        const TupleId secondary = neighbors[rng.Index(neighbors.size())];
        target.tuples.push_back(secondary);
        // Split the keyword budget across the two entities.
        const size_t first = num_keywords / 2 + num_keywords % 2;
        pick_keywords(TupleTokens(*db_, primary), first, &kws);
        pick_keywords(TupleTokens(*db_, secondary), num_keywords, &kws);
      }
    }
    if (kws.size() < num_keywords) {
      pick_keywords(TupleTokens(*db_, primary), num_keywords, &kws);
    }
    if (kws.empty()) continue;

    Result<KeywordQuery> query = KeywordQuery::FromKeywords(kws);
    if (!query.ok()) continue;

    GoldenStandard all, min_size;
    ComputeAnswerSets(*query, options.golden_t_max, &all, &min_size);
    if (min_size.empty()) continue;

    // Relevance judgement, emulating the human-judged workloads:
    //  * if the intended target is among the tightest answers, the golden
    //    standard is the target alone (single intended interpretation) or,
    //    for a minority of queries, the whole minimum-size set;
    //  * if the target exists but tighter coincidental answers beat it,
    //    keep the target as the (hard) judgement;
    //  * if the target was lost entirely, fall back to a small
    //    minimum-size set, else resample.
    const std::string target_key = JntKey(target);
    GoldenStandard golden;
    if (min_size.contains(target_key)) {
      if (min_size.size() <= 4 && rng.Bernoulli(0.3)) {
        golden = std::move(min_size);
      } else {
        golden.insert(target_key);
      }
    } else if (all.contains(target_key)) {
      golden.insert(target_key);
    } else if (min_size.size() <= 4) {
      golden = std::move(min_size);
    } else {
      continue;
    }

    WorkloadQuery wq;
    wq.id = "Q" + std::to_string(out.size() + 1);
    wq.query = std::move(*query);
    wq.num_relevant = golden.size();
    wq.golden = std::move(golden);
    out.push_back(std::move(wq));
  }
  return out;
}

std::vector<KeywordQuery> WorkloadGenerator::RandomQueries(
    size_t count, size_t num_keywords, uint64_t seed) const {
  Rng rng(seed);
  const std::vector<std::string> terms = index_->AllTerms();
  std::vector<KeywordQuery> out;
  if (terms.empty()) return out;
  size_t attempts = 0;
  while (out.size() < count && ++attempts < count * 20 + 100) {
    std::vector<std::string> kws;
    std::unordered_set<std::string> seen;
    while (kws.size() < num_keywords &&
           seen.size() < terms.size()) {
      const std::string& t = terms[rng.Index(terms.size())];
      if (seen.insert(t).second) kws.push_back(t);
    }
    if (kws.size() < num_keywords) break;
    Result<KeywordQuery> q = KeywordQuery::FromKeywords(std::move(kws));
    if (q.ok()) out.push_back(std::move(*q));
  }
  return out;
}

}  // namespace matcn
