#ifndef MATCN_DATASETS_WORKLOAD_H_
#define MATCN_DATASETS_WORKLOAD_H_

#include <string>
#include <vector>

#include "core/keyword_query.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "metrics/metrics.h"
#include "storage/database.h"

namespace matcn {

/// One benchmark query with its relevance judgements.
struct WorkloadQuery {
  std::string id;
  KeywordQuery query;
  GoldenStandard golden;  // JNT keys of the relevant answers
  size_t num_relevant = 0;
};

/// The three flavors of the paper's experimental query sets. They differ
/// in how targets are sampled and how many keywords queries carry:
///   * Coffman-Weaver: entity-centric, short (1-3 keywords, avg ~2), most
///     queries have a single relevant answer;
///   * SPARK: mostly two-entity join queries (2-3 keywords);
///   * INEX: longer topic-flavored queries (2-4 keywords).
enum class QueryStyle { kCoffmanWeaver, kSpark, kInex };

struct WorkloadOptions {
  QueryStyle style = QueryStyle::kCoffmanWeaver;
  size_t num_queries = 40;
  uint64_t seed = 7;
  /// Golden standards are the *minimum-size* MTJNTs among those of size at
  /// most this bound, enumerated exhaustively (via CNGen, so the judgement
  /// is independent of MatCNGen).
  int golden_t_max = 3;
};

/// Samples keyword queries from a database's own content, so every query
/// is answerable and has a mechanically derived golden standard — the
/// substitution for the paper's human-judged Coffman-Weaver / SPARK / INEX
/// workloads (see DESIGN.md).
class WorkloadGenerator {
 public:
  WorkloadGenerator(const Database* db, const SchemaGraph* schema_graph,
                    const TermIndex* index);

  std::vector<WorkloadQuery> Generate(const WorkloadOptions& options) const;

  /// `count` random queries of exactly `num_keywords` indexed terms each —
  /// the synthetic load of the Figure 11 scalability sweep.
  std::vector<KeywordQuery> RandomQueries(size_t count, size_t num_keywords,
                                          uint64_t seed) const;

  /// All minimum-size MTJNT keys for `query` (exposed for tests).
  GoldenStandard ComputeGolden(const KeywordQuery& query, int golden_t_max,
                               size_t* num_relevant) const;

  /// Exhaustive answer enumeration used by golden-standard construction:
  /// `all` receives every MTJNT key of size <= golden_t_max, `min_size`
  /// only those of minimum size.
  void ComputeAnswerSets(const KeywordQuery& query, int golden_t_max,
                         GoldenStandard* all, GoldenStandard* min_size) const;

 private:
  const Database* db_;
  const SchemaGraph* schema_graph_;
  const TermIndex* index_;
};

}  // namespace matcn

#endif  // MATCN_DATASETS_WORKLOAD_H_
