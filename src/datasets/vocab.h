#ifndef MATCN_DATASETS_VOCAB_H_
#define MATCN_DATASETS_VOCAB_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace matcn {

/// Word pools shared by the synthetic dataset generators. Names and topic
/// words are fixed English-like pools; bulk text is padded from a synthetic
/// Zipfian tail vocabulary so term-frequency distributions resemble real
/// corpora (a few very frequent terms, a long rare tail).
class Vocab {
 public:
  static const std::vector<std::string_view>& FirstNames();
  static const std::vector<std::string_view>& LastNames();
  static const std::vector<std::string_view>& TitleWords();
  static const std::vector<std::string_view>& PlaceNames();
  static const std::vector<std::string_view>& TopicWords();

  /// "firstname lastname" drawn uniformly.
  static std::string PersonName(Rng& rng);

  /// 1-3 title words, capitalized draw.
  static std::string Title(Rng& rng, int min_words = 1, int max_words = 3);

  /// `words` tokens drawn from a Zipf(1.0) distribution over TopicWords
  /// plus a synthetic tail ("w<rank>") — the padding text of comment-like
  /// attributes.
  static std::string ZipfText(Rng& rng, int words);
};

}  // namespace matcn

#endif  // MATCN_DATASETS_VOCAB_H_
