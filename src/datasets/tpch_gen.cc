#include "datasets/gen_util.h"
#include "datasets/generators.h"
#include "datasets/vocab.h"

namespace matcn {

using gen_internal::Builder;
using gen_internal::IntCol;
using gen_internal::Pk;
using gen_internal::TextCol;

// TPC-H: the standard 8 relations. The spec's composite
// lineitem->partsupp key becomes one surrogate-id FK here (our RICs are
// single-attribute), giving 10 declared RICs versus the paper's 11.
Database MakeTpch(uint64_t seed, double scale) {
  Database db;
  Builder b(&db, seed, scale);

  b.Relation("REGION", {Pk("id"), TextCol("name"), TextCol("comment")});
  b.Relation("NATION", {Pk("id"), TextCol("name"), IntCol("region_id"),
                        TextCol("comment")});
  b.Relation("SUPPLIER", {Pk("id"), TextCol("name"), IntCol("nation_id"),
                          TextCol("comment")});
  b.Relation("CUSTOMER", {Pk("id"), TextCol("name"), IntCol("nation_id"),
                          TextCol("comment")});
  b.Relation("PART", {Pk("id"), TextCol("name"), TextCol("brand"),
                      IntCol("size")});
  b.Relation("PARTSUPP", {Pk("id"), IntCol("part_id"), IntCol("supplier_id"),
                          TextCol("comment")});
  b.Relation("ORDERS", {Pk("id"), IntCol("customer_id"), IntCol("total"),
                        TextCol("comment")});
  b.Relation("LINEITEM", {Pk("id"), IntCol("order_id"), IntCol("part_id"),
                          IntCol("supplier_id"), IntCol("partsupp_id"),
                          IntCol("quantity"), TextCol("comment")});

  b.Fk("NATION", "region_id", "REGION", "id");
  b.Fk("SUPPLIER", "nation_id", "NATION", "id");
  b.Fk("CUSTOMER", "nation_id", "NATION", "id");
  b.Fk("PARTSUPP", "part_id", "PART", "id");
  b.Fk("PARTSUPP", "supplier_id", "SUPPLIER", "id");
  b.Fk("ORDERS", "customer_id", "CUSTOMER", "id");
  b.Fk("LINEITEM", "order_id", "ORDERS", "id");
  b.Fk("LINEITEM", "part_id", "PART", "id");
  b.Fk("LINEITEM", "supplier_id", "SUPPLIER", "id");
  b.Fk("LINEITEM", "partsupp_id", "PARTSUPP", "id");

  const std::vector<std::string> regions = {"africa", "america", "asia",
                                            "europe", "middleeast"};
  for (size_t i = 0; i < regions.size(); ++i) {
    b.Row("REGION", {Value(static_cast<int64_t>(i + 1)), Value(regions[i]),
                     Value(Vocab::ZipfText(b.rng(), 4))});
  }
  const int64_t num_nations = 25;
  const int64_t num_suppliers = b.scaled(300);
  const int64_t num_customers = b.scaled(2000);
  const int64_t num_parts = b.scaled(1500);
  const int64_t num_partsupp = b.scaled(3000);
  const int64_t num_orders = b.scaled(4000);

  for (int64_t i = 1; i <= num_nations; ++i) {
    b.Row("NATION",
          {Value(i),
           Value(std::string(
               Vocab::PlaceNames()[b.rng().Index(Vocab::PlaceNames().size())])),
           Value(b.Ref(static_cast<int64_t>(regions.size()))),
           Value(Vocab::ZipfText(b.rng(), 3))});
  }
  for (int64_t i = 1; i <= num_suppliers; ++i) {
    b.Row("SUPPLIER", {Value(i), Value(Vocab::PersonName(b.rng())),
                       Value(b.Ref(num_nations)),
                       Value(Vocab::ZipfText(b.rng(), 4))});
  }
  for (int64_t i = 1; i <= num_customers; ++i) {
    b.Row("CUSTOMER", {Value(i), Value(Vocab::PersonName(b.rng())),
                       Value(b.Ref(num_nations)),
                       Value(Vocab::ZipfText(b.rng(), 4))});
  }
  for (int64_t i = 1; i <= num_parts; ++i) {
    b.Row("PART", {Value(i), Value(Vocab::Title(b.rng(), 2, 3)),
                   Value("brand" + std::to_string(b.rng().Uniform(1, 25))),
                   Value(static_cast<int64_t>(b.rng().Uniform(1, 50)))});
  }
  for (int64_t i = 1; i <= num_partsupp; ++i) {
    b.Row("PARTSUPP", {Value(i), Value(b.Ref(num_parts)),
                       Value(b.Ref(num_suppliers)),
                       Value(Vocab::ZipfText(b.rng(), 3))});
  }
  for (int64_t i = 1; i <= num_orders; ++i) {
    b.Row("ORDERS",
          {Value(i), Value(b.Ref(num_customers)),
           Value(static_cast<int64_t>(b.rng().Uniform(100, 500000))),
           Value(Vocab::ZipfText(b.rng(), 3))});
  }
  for (int64_t i = 1; i <= b.scaled(12000); ++i) {
    b.Row("LINEITEM",
          {Value(i), Value(b.Ref(num_orders)), Value(b.Ref(num_parts)),
           Value(b.Ref(num_suppliers)), Value(b.Ref(num_partsupp)),
           Value(static_cast<int64_t>(b.rng().Uniform(1, 50))),
           Value(Vocab::ZipfText(b.rng(), 4))});
  }
  return db;
}

std::vector<NamedDataset> MakeAllDatasets(double scale) {
  std::vector<NamedDataset> out;
  out.push_back({"Mondial", MakeMondial(43, scale)});
  out.push_back({"IMDb", MakeImdb(42, scale)});
  out.push_back({"Wikipedia", MakeWikipedia(44, scale)});
  out.push_back({"DBLP", MakeDblp(45, scale)});
  out.push_back({"TPC-H", MakeTpch(46, scale)});
  return out;
}

}  // namespace matcn
