#ifndef MATCN_DATASETS_GENERATORS_H_
#define MATCN_DATASETS_GENERATORS_H_

#include <string>
#include <vector>

#include "storage/database.h"

namespace matcn {

/// Seeded synthetic generators standing in for the five evaluation
/// datasets of the paper (Table 2). Each reproduces its original's schema
/// graph — relation count and referential structure — and realistic
/// head-heavy term distributions, at a configurable scale (`scale`
/// multiplies the default row counts; defaults keep the full benchmark
/// suite in the seconds range). Relative sizes follow the paper: TPC-H
/// largest, Mondial smallest but with by far the densest schema.
///
/// The IMDb generator plants the paper's running-example entities
/// ("Denzel Washington", "American Gangster"), so the canonical query
/// works against it verbatim.
Database MakeImdb(uint64_t seed = 42, double scale = 1.0);
Database MakeMondial(uint64_t seed = 43, double scale = 1.0);
Database MakeWikipedia(uint64_t seed = 44, double scale = 1.0);
Database MakeDblp(uint64_t seed = 45, double scale = 1.0);
Database MakeTpch(uint64_t seed = 46, double scale = 1.0);

struct NamedDataset {
  std::string name;
  Database db;
};

/// All five datasets in the paper's Table 2 order.
std::vector<NamedDataset> MakeAllDatasets(double scale = 1.0);

}  // namespace matcn

#endif  // MATCN_DATASETS_GENERATORS_H_
