#ifndef MATCN_COMMON_STRINGS_H_
#define MATCN_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace matcn {

/// ASCII-lowercases `s` (the library normalizes all indexed text to ASCII
/// lowercase; non-ASCII bytes pass through unchanged).
std::string ToLower(std::string_view s);

/// Splits `s` on any character in `delims`, dropping empty pieces.
std::vector<std::string> Split(std::string_view s, std::string_view delims);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `haystack` contains `needle` case-insensitively — the semantics
/// of PostgreSQL's ILIKE '%needle%' used by the paper's disk-based TSFind.
bool ContainsWordCaseInsensitive(std::string_view haystack,
                                 std::string_view needle);

}  // namespace matcn

#endif  // MATCN_COMMON_STRINGS_H_
