#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace matcn {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Int(int64_t v) { return std::to_string(v); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << "| " << row[i] << std::string(widths[i] - row[i].size(), ' ')
         << ' ';
    }
    os << "|\n";
  };
  print_row(header_);
  for (size_t i = 0; i < header_.size(); ++i) {
    os << "|" << std::string(widths[i] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace matcn
