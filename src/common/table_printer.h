#ifndef MATCN_COMMON_TABLE_PRINTER_H_
#define MATCN_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace matcn {

/// Renders aligned plain-text tables. The benchmark binaries use this to
/// print the same rows the paper's tables and figure series report.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; it may have fewer cells than the header (the rest
  /// render empty) but not more.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimal places.
  static std::string Num(double v, int precision = 2);
  static std::string Int(int64_t v);

  /// Writes the table with a separator line under the header.
  void Print(std::ostream& os) const;

  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace matcn

#endif  // MATCN_COMMON_TABLE_PRINTER_H_
