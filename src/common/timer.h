#ifndef MATCN_COMMON_TIMER_H_
#define MATCN_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace matcn {

/// Wall-clock stopwatch used by the benchmark harnesses to split CN
/// generation time into its tuple-set and CN-construction components
/// (Figure 10 of the paper).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset(), in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace matcn

#endif  // MATCN_COMMON_TIMER_H_
