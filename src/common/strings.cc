#include "common/strings.h"

#include <cctype>

namespace matcn {
namespace {

bool IsTokenChar(unsigned char c) { return std::isalnum(c) != 0; }

bool TokenEqualsCaseInsensitive(std::string_view token,
                                std::string_view needle) {
  if (token.size() != needle.size()) return false;
  for (size_t i = 0; i < token.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(token[i])) !=
        std::tolower(static_cast<unsigned char>(needle[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ContainsWordCaseInsensitive(std::string_view haystack,
                                 std::string_view needle) {
  if (needle.empty()) return false;
  size_t i = 0;
  while (i < haystack.size()) {
    while (i < haystack.size() &&
           !IsTokenChar(static_cast<unsigned char>(haystack[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < haystack.size() &&
           IsTokenChar(static_cast<unsigned char>(haystack[i]))) {
      ++i;
    }
    if (i > start &&
        TokenEqualsCaseInsensitive(haystack.substr(start, i - start),
                                   needle)) {
      return true;
    }
  }
  return false;
}

}  // namespace matcn
