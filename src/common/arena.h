#ifndef MATCN_COMMON_ARENA_H_
#define MATCN_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <vector>

namespace matcn {

/// Chunked bump allocator behind the std::pmr::memory_resource interface:
/// the per-request scratch arena of the query hot path. Allocation is a
/// pointer bump; deallocation is a no-op; Reset() rewinds the cursor while
/// *retaining* every chunk, so a worker that solves one request warms the
/// arena up to its high-water mark and every later request of similar
/// shape runs without touching the heap at all.
///
/// Ownership rules (see DESIGN.md §12): arena-backed objects must not
/// escape the request that allocated them — anything returned to the
/// caller (candidate networks, response payloads, exporter snapshots) is
/// copied out into ordinary heap containers before Reset(). Not
/// thread-safe; one arena per worker.
class Arena : public std::pmr::memory_resource {
 public:
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;
  /// Chunk sizes double as the arena grows, capped here so one huge
  /// request cannot make every later chunk huge too.
  static constexpr size_t kMaxChunkBytes = 4 * 1024 * 1024;

  explicit Arena(size_t initial_chunk_bytes = kDefaultChunkBytes)
      : next_chunk_bytes_(initial_chunk_bytes < kMinChunkBytes
                              ? kMinChunkBytes
                              : initial_chunk_bytes) {}
  ~Arena() override = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Rewinds the bump cursor to the first chunk. Every chunk is retained;
  /// all previously handed-out pointers become invalid.
  void Reset() {
    current_ = 0;
    offset_ = 0;
    bytes_used_ = 0;
  }

  /// Live bytes handed out since the last Reset (alignment padding
  /// excluded).
  size_t bytes_used() const { return bytes_used_; }

  /// Total bytes of retained chunk storage.
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

  /// Lifetime high-water mark of bytes_used(); survives Reset(). This is
  /// the gauge that flows into GenerationStats / ServiceStats.
  size_t bytes_peak() const { return bytes_peak_; }

  size_t num_chunks() const { return chunks_.size(); }

 private:
  static constexpr size_t kMinChunkBytes = 64;

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
  };

  void* do_allocate(size_t bytes, size_t alignment) override {
    if (bytes == 0) bytes = 1;
    while (true) {
      if (current_ < chunks_.size()) {
        Chunk& c = chunks_[current_];
        const uintptr_t base = reinterpret_cast<uintptr_t>(c.data.get());
        const uintptr_t aligned =
            (base + offset_ + (alignment - 1)) & ~uintptr_t(alignment - 1);
        if (aligned + bytes <= base + c.size) {
          offset_ = aligned + bytes - base;
          bytes_used_ += bytes;
          if (bytes_used_ > bytes_peak_) bytes_peak_ = bytes_used_;
          return reinterpret_cast<void*>(aligned);
        }
        // Doesn't fit here: move on. Chunk sizes are nondecreasing, so a
        // request that fits any retained chunk is found before the heap
        // is consulted; the skipped tail is reclaimed by the next Reset.
        ++current_;
        offset_ = 0;
        continue;
      }
      size_t size = next_chunk_bytes_;
      while (size < bytes + alignment) size *= 2;
      if (next_chunk_bytes_ < kMaxChunkBytes) {
        next_chunk_bytes_ = size * 2 < kMaxChunkBytes ? size * 2
                                                      : kMaxChunkBytes;
      }
      chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
      current_ = chunks_.size() - 1;
      offset_ = 0;
    }
  }

  void do_deallocate(void*, size_t, size_t) override {}  // bump arena

  bool do_is_equal(const std::pmr::memory_resource& other) const
      noexcept override {
    return this == &other;
  }

  std::vector<Chunk> chunks_;
  size_t current_ = 0;        // chunk the cursor is in
  size_t offset_ = 0;         // bump offset within that chunk
  size_t next_chunk_bytes_;   // size of the next chunk to allocate
  size_t bytes_used_ = 0;
  size_t bytes_peak_ = 0;
};

}  // namespace matcn

#endif  // MATCN_COMMON_ARENA_H_
