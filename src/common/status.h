#ifndef MATCN_COMMON_STATUS_H_
#define MATCN_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace matcn {

/// Error categories used across the library. Mirrors the minimal set a
/// database library needs; extend as new failure modes appear.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kDeadlineExceeded,
  kInternal,
  kIOError,
  kUnimplemented,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight status object used instead of exceptions for all fallible
/// operations. OK statuses carry no message and are cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status, never both.
/// Use `ok()` before dereferencing; `value()` on an error aborts in debug
/// builds via assert-like checks in callers.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or a non-OK Status keeps call sites
  /// terse (`return value;` / `return Status::NotFound(...)`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace matcn

/// Propagates a non-OK Status from an expression, like absl's macro.
#define MATCN_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::matcn::Status _matcn_status = (expr);    \
    if (!_matcn_status.ok()) return _matcn_status; \
  } while (false)

#endif  // MATCN_COMMON_STATUS_H_
