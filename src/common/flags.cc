#include "common/flags.h"

#include <cstdlib>

namespace matcn {

void FlagSet::Set(const std::string& name, std::string value) {
  auto [it, inserted] = flags_.emplace(name, std::move(value));
  if (!inserted) {
    errors_.push_back("duplicate flag --" + name + " (already set to '" +
                      it->second + "')");
  }
}

FlagSet::FlagSet(int argc, char** argv) {
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (flags_done || arg.size() < 3 || arg.rfind("--", 0) != 0) {
      if (arg == "--") {
        flags_done = true;
        continue;
      }
      positional_.push_back(arg);
      continue;
    }
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      // "--name=value"; covers values that start with '-' ("--offset=-5")
      // and empty values ("--label=").
      Set(arg.substr(2, eq - 2), arg.substr(eq + 1));
      continue;
    }
    const std::string name = arg.substr(2);
    // "--name value" when a value follows; bare "--name" is boolean true.
    // A following "-5" / "-0.25" is a value, not a flag — only "--"
    // prefixes start a new flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      Set(name, argv[++i]);
    } else {
      Set(name, "1");
    }
  }
}

bool FlagSet::Has(const std::string& name) const {
  queried_[name] = true;
  return flags_.count(name) != 0;
}

std::string FlagSet::GetString(const std::string& name,
                               const std::string& default_value) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

int64_t FlagSet::GetInt(const std::string& name, int64_t default_value) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  return it == flags_.end() ? default_value
                            : std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagSet::GetDouble(const std::string& name,
                          double default_value) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  return it == flags_.end() ? default_value
                            : std::strtod(it->second.c_str(), nullptr);
}

std::vector<std::string> FlagSet::UnknownFlags() const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : flags_) {
    if (queried_.find(name) == queried_.end()) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace matcn
