#ifndef MATCN_COMMON_EPOCH_H_
#define MATCN_COMMON_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

namespace matcn {

/// Epoch-based memory reclamation (EBR) for read-mostly concurrent
/// structures: readers pin the current epoch with a cheap RAII Guard and
/// may then follow pointers into the structure without locks; writers
/// unlink replaced objects and Retire() them, and Collect() frees a
/// retired object only once no guard that could still hold a reference to
/// it remains active.
///
/// Reclamation rule (conservative two-epoch grace period): an object
/// retired at epoch r is freed only when r + 2 <= the current global
/// epoch AND every active guard is pinned at an epoch > r. Guards publish
/// their epoch with a validate-republish loop (publish, re-read the
/// global epoch, retry on change), so a reader that observed an old
/// pointer is always visible to Collect before the pointee can be freed.
///
/// Intended split of work: readers only ever construct Guards (wait-free
/// after slot acquisition); writers call Retire/BumpEpoch/Collect, which
/// share one mutex — fine for structures whose writers are serialized
/// anyway (the live term index funnels all mutation through IndexWriter).
class EpochManager {
 public:
  /// Sentinel for "slot not pinned".
  static constexpr uint64_t kIdle = ~uint64_t{0};

  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
  };

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  ~EpochManager() {
    // No guards may outlive the manager; whatever is still retired is
    // unreachable by now, so free it all.
    for (Retired& r : retired_) r.deleter();
  }

  /// An active reader pin. Move-only; destruction releases the slot.
  /// Guards are cheap but not free (a few seq_cst operations) — pin once
  /// per query, not once per lookup.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& other) noexcept : slot_(other.slot_) {
      other.slot_ = nullptr;
    }
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        Release();
        slot_ = other.slot_;
        other.slot_ = nullptr;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { Release(); }

    bool active() const { return slot_ != nullptr; }

    /// The epoch this guard is pinned at (kIdle when inactive).
    uint64_t epoch() const {
      return slot_ == nullptr ? kIdle
                              : slot_->epoch.load(std::memory_order_relaxed);
    }

    void Release() {
      if (slot_ != nullptr) {
        slot_->epoch.store(kIdle, std::memory_order_release);
        slot_ = nullptr;
      }
    }

   private:
    friend class EpochManager;
    explicit Guard(Slot* slot) : slot_(slot) {}
    Slot* slot_ = nullptr;
  };

  /// Pins the current epoch. Lock-free: claims one of kMaxGuards slots
  /// with a CAS (spinning only in the pathological case of kMaxGuards
  /// simultaneously active guards), then republishes until the observed
  /// global epoch is stable.
  Guard Pin() {
    Slot* slot = ClaimSlot();
    // Validate-republish: once the re-read global epoch matches what this
    // slot published, every future Collect sees the pin before it could
    // free anything retired at or after that epoch.
    uint64_t e = slot->epoch.load(std::memory_order_relaxed);
    while (true) {
      const uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
      if (now == e) break;
      e = now;
      slot->epoch.store(e, std::memory_order_seq_cst);
    }
    return Guard(slot);
  }

  /// Queues `deleter` to run once every reader that could still see the
  /// retired object has unpinned. Writer-side (takes the retire mutex).
  ///
  /// CORRECTNESS REQUIRES A SINGLE SERIALIZED MUTATOR: the retire epoch
  /// is stamped from the same global counter the mutator bumps, so the
  /// "no guard pinned at > r can still see the object" invariant only
  /// holds when the unlink, this Retire, and every BumpEpoch are totally
  /// ordered by one thread (or one external mutex). Two concurrent
  /// mutators can interleave an unlink with the other's bump and stamp a
  /// retire epoch that Collect deems unreferenced while a reader pinned
  /// at a later epoch still holds the old pointer.
  void Retire(std::function<void()> deleter) {
    std::lock_guard<std::mutex> lock(mu_);
    retired_.push_back(Retired{
        global_epoch_.load(std::memory_order_seq_cst), std::move(deleter)});
    retired_count_.store(retired_.size(), std::memory_order_relaxed);
  }

  /// Convenience: retire a heap object.
  template <typename T>
  void RetireObject(const T* object) {
    Retire([object] { delete object; });
  }

  /// Advances the global epoch (writers call this after a batch of
  /// mutations; each bump lets one more generation of garbage age out).
  uint64_t BumpEpoch() {
    return global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  /// Frees every retired object whose grace period has elapsed; returns
  /// how many were freed. Writer-side.
  size_t Collect() {
    std::vector<std::function<void()>> ready;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const uint64_t global = global_epoch_.load(std::memory_order_seq_cst);
      uint64_t min_active = kIdle;
      for (const Slot& slot : slots_) {
        const uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
        if (e != kIdle && e < min_active) min_active = e;
      }
      size_t keep = 0;
      for (Retired& r : retired_) {
        const bool aged = r.epoch + 2 <= global;
        const bool unreferenced = min_active == kIdle || r.epoch < min_active;
        if (aged && unreferenced) {
          ready.push_back(std::move(r.deleter));
        } else {
          retired_[keep++] = std::move(r);
        }
      }
      retired_.resize(keep);
      retired_count_.store(keep, std::memory_order_relaxed);
    }
    // Run deleters outside the mutex: they may be arbitrarily heavy.
    for (std::function<void()>& deleter : ready) deleter();
    return ready.size();
  }

  uint64_t current_epoch() const {
    return global_epoch_.load(std::memory_order_relaxed);
  }

  /// Objects retired but not yet freed (test/metrics hook).
  size_t retired_count() const {
    return retired_count_.load(std::memory_order_relaxed);
  }

  /// Guards currently pinned (test/metrics hook; racy by nature).
  size_t active_guards() const {
    size_t n = 0;
    for (const Slot& slot : slots_) {
      if (slot.epoch.load(std::memory_order_relaxed) != kIdle) ++n;
    }
    return n;
  }

 private:
  // Enough for every worker thread in this codebase plus nested guards;
  // Pin spins only if all are simultaneously held.
  static constexpr size_t kMaxGuards = 128;

  struct Retired {
    uint64_t epoch = 0;
    std::function<void()> deleter;
  };

  Slot* ClaimSlot() {
    // Start probing at a per-thread offset so unrelated threads rarely
    // contend on the same slot.
    static std::atomic<size_t> next_hint{0};
    thread_local size_t hint =
        next_hint.fetch_add(7, std::memory_order_relaxed) % kMaxGuards;
    while (true) {
      for (size_t i = 0; i < kMaxGuards; ++i) {
        Slot& slot = slots_[(hint + i) % kMaxGuards];
        uint64_t expected = kIdle;
        if (slot.epoch.compare_exchange_strong(
                expected, global_epoch_.load(std::memory_order_seq_cst),
                std::memory_order_seq_cst)) {
          return &slot;
        }
      }
    }
  }

  std::atomic<uint64_t> global_epoch_{2};
  // Fixed array so slot addresses stay stable for the manager's lifetime
  // and guards can hold raw pointers into it.
  Slot slots_[kMaxGuards];

  std::mutex mu_;
  std::vector<Retired> retired_;
  std::atomic<size_t> retired_count_{0};
};

}  // namespace matcn

#endif  // MATCN_COMMON_EPOCH_H_
