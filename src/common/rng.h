#ifndef MATCN_COMMON_RNG_H_
#define MATCN_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace matcn {

/// Deterministic random source used by all dataset and workload generators.
/// Every generator takes an explicit seed so experiments reproduce exactly.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t Uniform(uint64_t lo, uint64_t hi) {
    std::uniform_int_distribution<uint64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [0, 1).
  double UniformReal() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Picks a uniformly random element index of a container of size n.
  /// Requires n > 0.
  size_t Index(size_t n) { return static_cast<size_t>(Uniform(0, n - 1)); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Samples ranks from a Zipf(s) distribution over [0, n): rank r is drawn
/// with probability proportional to 1/(r+1)^s. Precomputes the CDF once;
/// each Sample() is a binary search. Used to give synthetic text realistic
/// head-heavy term frequencies (frequent terms like "africa"/"economy" in
/// the paper's CIA Facts anecdote).
class ZipfSampler {
 public:
  /// Requires n > 0 and s >= 0 (s == 0 degrades to uniform).
  ZipfSampler(size_t n, double s);

  /// Returns a rank in [0, n).
  size_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace matcn

#endif  // MATCN_COMMON_RNG_H_
