#ifndef MATCN_COMMON_FLAGS_H_
#define MATCN_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace matcn {

/// Minimal command-line parser shared by the example binaries: flags are
/// "--name value" or "--name=value" (negative numbers work in both
/// forms); everything else is a positional argument, in order. No
/// registration — callers query by name with a default, `UnknownFlags`
/// reports names the caller never asked for, and `errors()` reports
/// malformed input (duplicate flags) for mains to reject with a usage
/// message.
class FlagSet {
 public:
  /// Parses argv[1..argc). A "--" argument ends flag parsing; the rest is
  /// positional.
  FlagSet(int argc, char** argv);

  const std::vector<std::string>& positional() const { return positional_; }

  /// Parse errors, e.g. a flag supplied twice. A well-behaved main checks
  /// this (alongside UnknownFlags) before trusting any Get call.
  const std::vector<std::string>& errors() const { return errors_; }

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;

  /// Flag names that were supplied but never queried by any Get/Has call.
  /// Call last; lets mains reject typos with a usage message.
  std::vector<std::string> UnknownFlags() const;

 private:
  void Set(const std::string& name, std::string value);

  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
  std::vector<std::string> errors_;
};

}  // namespace matcn

#endif  // MATCN_COMMON_FLAGS_H_
