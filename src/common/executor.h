#ifndef MATCN_COMMON_EXECUTOR_H_
#define MATCN_COMMON_EXECUTOR_H_

#include <functional>

namespace matcn {

/// Minimal executor seam between the core pipeline and whoever owns the
/// worker threads. The generation pipeline lives below the serving layer,
/// so it cannot name ThreadPool; instead it accepts this interface and the
/// service hands its own pool down. Submission is strictly best-effort:
/// `TrySpawn` may refuse (pool saturated, shutting down), and the caller
/// must be prepared to run all of the work itself — parallel MatchCN uses
/// spawned tasks purely as helpers racing the calling thread over a shared
/// work cursor, so a refused or late helper costs speed, never answers.
class TaskExecutor {
 public:
  virtual ~TaskExecutor() = default;

  /// Schedules `fn` to run on some worker thread soon; returns false when
  /// the executor cannot take it (the caller absorbs the work).
  virtual bool TrySpawn(std::function<void()> fn) = 0;

  /// Worker threads available, as a hint for how many helpers to spawn.
  virtual unsigned concurrency() const = 0;
};

}  // namespace matcn

#endif  // MATCN_COMMON_EXECUTOR_H_
