#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace matcn {

ZipfSampler::ZipfSampler(size_t n, double s) {
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = acc;
  }
  for (double& v : cdf_) v /= acc;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.UniformReal();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace matcn
