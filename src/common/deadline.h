#ifndef MATCN_COMMON_DEADLINE_H_
#define MATCN_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace matcn {

/// A point in time after which a query should stop doing work. Deadlines
/// are cooperative: the generation pipeline checks `Expired()` at stage
/// boundaries and inside its hot loops, abandoning remaining work instead
/// of being interrupted. The default-constructed deadline is infinite.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `millis` from now; non-positive values are already expired.
  static Deadline AfterMillis(int64_t millis) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = Clock::now() + std::chrono::milliseconds(millis);
    return d;
  }

  static Deadline At(Clock::time_point at) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = at;
    return d;
  }

  bool IsInfinite() const { return !has_deadline_; }

  bool Expired() const { return has_deadline_ && Clock::now() >= at_; }

  /// Milliseconds until expiry; negative if already expired, INT64_MAX for
  /// an infinite deadline.
  int64_t RemainingMillis() const {
    if (!has_deadline_) return std::numeric_limits<int64_t>::max();
    return std::chrono::duration_cast<std::chrono::milliseconds>(at_ -
                                                                 Clock::now())
        .count();
  }

 private:
  bool has_deadline_ = false;
  Clock::time_point at_{};
};

/// Shared cancellation state for one in-flight query: an explicit cancel
/// flag plus an optional deadline. The pipeline polls `Expired()`; callers
/// (a serving layer, a signal handler) flip the flag with `Cancel()` from
/// any thread.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(Deadline deadline) : deadline_(deadline) {}

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool CancelRequested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True once work should stop: cancelled explicitly or past deadline.
  bool Expired() const { return CancelRequested() || deadline_.Expired(); }

  const Deadline& deadline() const { return deadline_; }

 private:
  std::atomic<bool> cancelled_{false};
  Deadline deadline_;
};

}  // namespace matcn

#endif  // MATCN_COMMON_DEADLINE_H_
