#include "simd/kernels.h"

#include <algorithm>
#include <cassert>

#include "simd/dispatch.h"

#if defined(__x86_64__) || defined(__i386__)
#define MATCN_SIMD_X86 1
#include <immintrin.h>
#endif

namespace matcn::simd {

// ---------------------------------------------------------------------------
// Varbyte block decode

size_t DecodeDeltaBlockScalar(const uint8_t* data, size_t size, size_t count,
                              uint64_t* out) {
  uint64_t prev = 0;
  size_t pos = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    unsigned shift = 0;
    uint8_t b;
    do {
      b = data[pos++];
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      shift += 7;
    } while (b & 0x80);
    prev += v;
    out[i] = prev;
  }
  assert(pos <= size);
  (void)size;
  return pos;
}

#if MATCN_SIMD_X86

namespace {

// One-byte-delta fast path shared by the SSE and AVX2 tiers: a 16-byte
// load plus a movemask answers "are the next 8 deltas all single-byte?"
// in two instructions. Posting-list gaps are overwhelmingly < 128 on the
// dense imdb-derived lists, so this path carries almost all bytes.
inline bool NextEightAreSingleByte(const uint8_t* p) {
  const __m128i bytes = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  return (static_cast<uint32_t>(_mm_movemask_epi8(bytes)) & 0xFFu) == 0;
}

// Decodes one varbyte value at data[pos], advancing pos.
inline uint64_t DecodeOne(const uint8_t* data, size_t* pos) {
  uint64_t v = 0;
  unsigned shift = 0;
  uint8_t b;
  do {
    b = data[(*pos)++];
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    shift += 7;
  } while (b & 0x80);
  return v;
}

// Shuffle table for the masked-vbyte window decode, indexed by the
// continuation mask of a window's low 8 bytes. A mask is decodable when
// every value in the window is 1 or 2 bytes wide (no adjacent
// continuation bits) and no value straddles the window end (bit 7
// clear); `n[mask]` is then the number of complete values in the 8
// bytes, and `shuf[mask]` expands them into 8 little-endian 16-bit lanes
// (absent high bytes zero-filled via pshufb's 0x80 convention). Invalid
// masks have n == 0.
struct VbWindowTable {
  alignas(16) uint8_t shuf[256][16];
  uint8_t n[256];
};

const VbWindowTable& WindowTable() {
  static const VbWindowTable table = [] {
    VbWindowTable t{};
    for (unsigned m = 0; m < 256; ++m) {
      t.n[m] = 0;
      for (int k = 0; k < 16; ++k) t.shuf[m][k] = 0x80;
      if ((m & 0x80u) != 0 || (m & (m << 1)) != 0) continue;
      unsigned p = 0;
      uint8_t lane = 0;
      while (p < 8) {
        t.shuf[m][2 * lane] = static_cast<uint8_t>(p);
        if (m & (1u << p)) {
          t.shuf[m][2 * lane + 1] = static_cast<uint8_t>(p + 1);
          p += 2;
        } else {
          p += 1;
        }
        ++lane;
      }
      t.n[m] = lane;  // p lands exactly on 8: bit 7 is clear
    }
    return t;
  }();
  return table;
}

// Prefix-sums 8 u16 lanes into out[0..8) on top of `prev` and returns
// prev advanced by the lane total. The sum runs in the 32-bit domain
// (8 * 16383 overflows u16). The total comes from an independent
// madd/shuffle reduction, so the loop-carried dependency is one scalar
// add — iterations overlap instead of serializing on an extract from the
// prefix chain.
__attribute__((target("avx2"))) inline uint64_t StorePrefix8(
    __m128i vals, uint64_t prev, uint64_t* out) {
  __m256i x = _mm256_cvtepu16_epi32(vals);
  x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
  x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
  __m256i carry = _mm256_permute2x128_si256(x, x, 0x00);
  carry = _mm256_shuffle_epi32(carry, _MM_SHUFFLE(3, 3, 3, 3));
  x = _mm256_add_epi32(
      x, _mm256_blend_epi32(_mm256_setzero_si256(), carry, 0xF0));
  const __m256i base = _mm256_set1_epi64x(static_cast<long long>(prev));
  _mm256_storeu_si256(
      reinterpret_cast<__m256i*>(out),
      _mm256_add_epi64(base,
                       _mm256_cvtepu32_epi64(_mm256_castsi256_si128(x))));
  _mm256_storeu_si256(
      reinterpret_cast<__m256i*>(out + 4),
      _mm256_add_epi64(base, _mm256_cvtepu32_epi64(
                                 _mm256_extracti128_si256(x, 1))));
  __m128i total = _mm_madd_epi16(vals, _mm_set1_epi16(1));
  total = _mm_add_epi32(total,
                        _mm_shuffle_epi32(total, _MM_SHUFFLE(1, 0, 3, 2)));
  total = _mm_add_epi32(total,
                        _mm_shuffle_epi32(total, _MM_SHUFFLE(2, 3, 0, 1)));
  return prev + static_cast<uint32_t>(_mm_cvtsi128_si32(total));
}

__attribute__((target("avx2"))) size_t DecodeDeltaBlockAvx2(
    const uint8_t* data, size_t size, size_t count, uint64_t* out) {
  const VbWindowTable& table = WindowTable();
  const __m128i low7 = _mm_set1_epi8(0x7f);
  const __m128i mul = _mm_set1_epi16(static_cast<short>(0x8001));
  uint64_t prev = 0;
  size_t pos = 0;
  size_t i = 0;
  while (i + 8 <= count && pos + 16 <= size) {
    const __m128i bytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + pos));
    const uint32_t mask =
        static_cast<uint32_t>(_mm_movemask_epi8(bytes)) & 0xFFFFu;
    if ((mask & 0xFFu) == 0) {
      // Eight single-byte deltas — the dense-list fast path. Prefix-sum
      // in the 16-bit domain (8 gaps sum to at most 8*127), widen, add
      // the base; psadbw yields the block total straight from the load.
      __m128i w = _mm_cvtepu8_epi16(bytes);
      w = _mm_add_epi16(w, _mm_slli_si128(w, 2));
      w = _mm_add_epi16(w, _mm_slli_si128(w, 4));
      w = _mm_add_epi16(w, _mm_slli_si128(w, 8));
      const __m256i base = _mm256_set1_epi64x(static_cast<long long>(prev));
      const __m256i lo = _mm256_add_epi64(base, _mm256_cvtepu16_epi64(w));
      const __m256i hi = _mm256_add_epi64(
          base, _mm256_cvtepu16_epi64(_mm_srli_si128(w, 8)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), lo);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4), hi);
      prev += static_cast<uint64_t>(_mm_cvtsi128_si64(
          _mm_sad_epu8(_mm_move_epi64(bytes), _mm_setzero_si128())));
      pos += 8;
      i += 8;
      continue;
    }
    if (mask == 0x5555u) {
      // Eight two-byte deltas (gaps 128..16383), the whole 16-byte
      // window: maddubs folds each pair into low7(b0) + 128*low7(b1).
      const __m128i vals =
          _mm_maddubs_epi16(mul, _mm_and_si128(bytes, low7));
      prev = StorePrefix8(vals, prev, out + i);
      pos += 16;
      i += 8;
      continue;
    }
    const uint32_t m8 = mask & 0xFFu;
    if ((m8 & ((m8 << 1) | 0x80u)) == 0) {
      // Masked-vbyte window: the low 8 bytes hold 4..8 complete values of
      // mixed 1/2-byte width — the common shape of real posting lists,
      // where ~20% two-byte gaps make pure 8x single-byte windows rare.
      // A shuffle keyed on the continuation mask expands the values into
      // 16-bit lanes; absent lanes decode as 0 and are overwritten by the
      // next window (the i+8 <= count guard keeps the full 8-lane store
      // in bounds).
      const __m128i shuffled = _mm_shuffle_epi8(
          _mm_and_si128(bytes, low7),
          _mm_load_si128(
              reinterpret_cast<const __m128i*>(table.shuf[m8])));
      const __m128i vals = _mm_maddubs_epi16(mul, shuffled);
      prev = StorePrefix8(vals, prev, out + i);
      pos += 8;
      i += table.n[m8];
      continue;
    }
    // A wide (3+ byte) delta sits in the window: decode one value scalar
    // and re-probe (the window realigns past it).
    prev += DecodeOne(data, &pos);
    out[i++] = prev;
  }
  for (; i < count; ++i) {
    prev += DecodeOne(data, &pos);
    out[i] = prev;
  }
  assert(pos <= size);
  return pos;
}

// SSE tier: same movemask fast-path detection, scalar unrolled sum. The
// win over the plain scalar loop is the branch-free "8 single-byte gaps"
// probe replacing per-byte continuation tests.
size_t DecodeDeltaBlockSse(const uint8_t* data, size_t size, size_t count,
                           uint64_t* out) {
  uint64_t prev = 0;
  size_t pos = 0;
  size_t i = 0;
  while (i + 8 <= count && pos + 16 <= size) {
    if (NextEightAreSingleByte(data + pos)) {
      for (int k = 0; k < 8; ++k) {
        prev += data[pos + static_cast<size_t>(k)];
        out[i + static_cast<size_t>(k)] = prev;
      }
      pos += 8;
      i += 8;
      continue;
    }
    prev += DecodeOne(data, &pos);
    out[i++] = prev;
  }
  for (; i < count; ++i) {
    prev += DecodeOne(data, &pos);
    out[i] = prev;
  }
  assert(pos <= size);
  return pos;
}

}  // namespace

#endif  // MATCN_SIMD_X86

size_t DecodeDeltaBlock(const uint8_t* data, size_t size, size_t count,
                        uint64_t* out) {
#if MATCN_SIMD_X86
  switch (ActiveLevel()) {
    case Level::kAvx2:
      return DecodeDeltaBlockAvx2(data, size, count, out);
    case Level::kSse42:
      return DecodeDeltaBlockSse(data, size, count, out);
    case Level::kScalar:
      break;
  }
#endif
  return DecodeDeltaBlockScalar(data, size, count, out);
}

// ---------------------------------------------------------------------------
// Sorted-u64 intersection

size_t IntersectSortedU64Scalar(const uint64_t* a, size_t na,
                                const uint64_t* b, size_t nb, uint64_t* out) {
  size_t i = 0, j = 0, k = 0;
  while (i < na && j < nb) {
    const uint64_t x = a[i];
    const uint64_t y = b[j];
    out[k] = x;
    k += static_cast<size_t>(x == y);
    i += static_cast<size_t>(x <= y);
    j += static_cast<size_t>(y <= x);
  }
  return k;
}

namespace {

// Galloping (exponential + binary search) for badly skewed sizes: each
// element of the short list is located in the long list in O(log gap),
// resuming where the previous probe ended. Requires na <= nb.
size_t IntersectGalloping(const uint64_t* a, size_t na, const uint64_t* b,
                          size_t nb, uint64_t* out) {
  size_t k = 0;
  size_t lo = 0;
  for (size_t i = 0; i < na && lo < nb; ++i) {
    const uint64_t x = a[i];
    size_t step = 1;
    while (lo + step < nb && b[lo + step] < x) step <<= 1;
    const size_t hi = std::min(lo + step + 1, nb);
    const size_t p =
        static_cast<size_t>(std::lower_bound(b + lo, b + hi, x) - b);
    if (p < nb && b[p] == x) out[k++] = x;
    lo = p;
  }
  return k;
}

#if MATCN_SIMD_X86

// Block-probe merge (Lemire's V1 shape): walk the shorter list scalar,
// compare each element against 4 candidates of the longer list at once.
// Requires na <= nb.
__attribute__((target("avx2"))) size_t IntersectAvx2(const uint64_t* a,
                                                     size_t na,
                                                     const uint64_t* b,
                                                     size_t nb,
                                                     uint64_t* out) {
  size_t i = 0, j = 0, k = 0;
  bool blocks = j + 4 <= nb;
  while (i < na && blocks) {
    const uint64_t x = a[i];
    while (b[j + 3] < x) {
      j += 4;
      if (j + 4 > nb) {
        blocks = false;
        break;
      }
    }
    if (!blocks) break;
    const __m256i vx = _mm256_set1_epi64x(static_cast<long long>(x));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const int eq =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(vb, vx)));
    out[k] = x;
    k += static_cast<size_t>(eq != 0);
    ++i;
  }
  // Scalar tail over whatever remains of either list.
  while (i < na && j < nb) {
    const uint64_t x = a[i];
    const uint64_t y = b[j];
    out[k] = x;
    k += static_cast<size_t>(x == y);
    i += static_cast<size_t>(x <= y);
    j += static_cast<size_t>(y <= x);
  }
  return k;
}

__attribute__((target("sse4.2"))) size_t IntersectSse42(const uint64_t* a,
                                                        size_t na,
                                                        const uint64_t* b,
                                                        size_t nb,
                                                        uint64_t* out) {
  size_t i = 0, j = 0, k = 0;
  bool blocks = j + 4 <= nb;
  while (i < na && blocks) {
    const uint64_t x = a[i];
    while (b[j + 3] < x) {
      j += 4;
      if (j + 4 > nb) {
        blocks = false;
        break;
      }
    }
    if (!blocks) break;
    const __m128i vx = _mm_set1_epi64x(static_cast<long long>(x));
    const __m128i b0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    const __m128i b1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j + 2));
    const int eq =
        _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(b0, vx))) |
        _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(b1, vx)));
    out[k] = x;
    k += static_cast<size_t>(eq != 0);
    ++i;
  }
  while (i < na && j < nb) {
    const uint64_t x = a[i];
    const uint64_t y = b[j];
    out[k] = x;
    k += static_cast<size_t>(x == y);
    i += static_cast<size_t>(x <= y);
    j += static_cast<size_t>(y <= x);
  }
  return k;
}

#endif  // MATCN_SIMD_X86

}  // namespace

size_t IntersectSortedU64(const uint64_t* a, size_t na, const uint64_t* b,
                          size_t nb, uint64_t* out) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  // Rarest-first skew guard: past ~32x asymmetry, galloping's O(short *
  // log(long/short)) beats any merge regardless of instruction set.
  if (nb / na >= 32) return IntersectGalloping(a, na, b, nb, out);
#if MATCN_SIMD_X86
  switch (ActiveLevel()) {
    case Level::kAvx2:
      return IntersectAvx2(a, na, b, nb, out);
    case Level::kSse42:
      return IntersectSse42(a, na, b, nb, out);
    case Level::kScalar:
      break;
  }
#endif
  return IntersectSortedU64Scalar(a, na, b, nb, out);
}

}  // namespace matcn::simd
