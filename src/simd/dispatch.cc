#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>

namespace matcn::simd {
namespace {

Level DetectLevel() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Level::kSse42;
#endif
  return Level::kScalar;
}

bool EnvForcesScalar() {
  const char* v = std::getenv("MATCN_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

std::atomic<bool>& ForceFlag() {
  // Function-local so the env var is read exactly once, safely, no matter
  // which translation unit touches the kernels first.
  static std::atomic<bool> flag{EnvForcesScalar()};
  return flag;
}

}  // namespace

Level ActiveLevel() {
  static const Level detected = DetectLevel();
  return ForceFlag().load(std::memory_order_relaxed) ? Level::kScalar
                                                     : detected;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kSse42:
      return "sse4.2";
    case Level::kAvx2:
      return "avx2";
    case Level::kScalar:
    default:
      return "scalar";
  }
}

void ForceScalar(bool force) {
  ForceFlag().store(force, std::memory_order_relaxed);
}

}  // namespace matcn::simd
