#ifndef MATCN_SIMD_KERNELS_H_
#define MATCN_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace matcn::simd {

/// Decodes `count` varbyte-encoded deltas from `data` (a buffer of `size`
/// bytes produced by VarbyteEncode) and prefix-sums them into absolute
/// values written to out[0..count). Returns the number of bytes consumed.
/// The input must be well-formed: exactly `count` terminated values within
/// `size` bytes (the encoder guarantees this; the kernel does not
/// re-validate per byte). Dispatches to the widest available tier; the
/// AVX2/SSE tiers never read past data[size-1].
size_t DecodeDeltaBlock(const uint8_t* data, size_t size, size_t count,
                        uint64_t* out);

/// The always-compiled scalar fallback, exposed for differential tests
/// and the microbenchmark.
size_t DecodeDeltaBlockScalar(const uint8_t* data, size_t size, size_t count,
                              uint64_t* out);

/// Intersects two sorted unique uint64 arrays into out[0..result), which
/// must have capacity >= min(na, nb). Picks galloping search when the
/// sizes are badly skewed (the rare-term x common-term case) and a
/// SIMD-assisted block merge otherwise. Returns the number of elements
/// written. `out` may not alias `a` or `b`.
size_t IntersectSortedU64(const uint64_t* a, size_t na, const uint64_t* b,
                          size_t nb, uint64_t* out);

/// Scalar branch-light merge fallback, exposed for tests and the bench.
size_t IntersectSortedU64Scalar(const uint64_t* a, size_t na,
                                const uint64_t* b, size_t nb, uint64_t* out);

}  // namespace matcn::simd

#endif  // MATCN_SIMD_KERNELS_H_
