#ifndef MATCN_SIMD_DISPATCH_H_
#define MATCN_SIMD_DISPATCH_H_

namespace matcn::simd {

/// Instruction-set tiers the posting kernels are compiled for. The scalar
/// fallback is always compiled and always correct; the wider tiers are
/// selected at runtime from CPUID, so one binary runs everywhere.
enum class Level : int {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

/// The tier the kernels dispatch to right now: the widest tier the CPU
/// supports, unless the MATCN_FORCE_SCALAR environment variable (any
/// value but "0") or ForceScalar(true) pins the scalar fallback.
Level ActiveLevel();

/// Stable lowercase name ("scalar", "sse4.2", "avx2") for logs and STATS.
const char* LevelName(Level level);

/// Test/bench hook: pin (or unpin) the scalar fallback at runtime,
/// overriding CPU detection. Process-wide; the differential tests use it
/// to run the same inputs through both code paths in one process.
void ForceScalar(bool force);

}  // namespace matcn::simd

#endif  // MATCN_SIMD_DISPATCH_H_
