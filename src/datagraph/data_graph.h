#ifndef MATCN_DATAGRAPH_DATA_GRAPH_H_
#define MATCN_DATAGRAPH_DATA_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/schema_graph.h"
#include "storage/database.h"

namespace matcn {

/// The data graph used by the second family of R-KwS systems (BANKS,
/// Bidirectional, BLINKS, DPBF): one node per database tuple, one edge per
/// instantiated referential constraint (a tuple holding a foreign key is
/// linked to the tuple it references). The graph is stored undirected —
/// all three implemented search algorithms here treat FK edges as
/// traversable both ways, the usual simplification when edge-direction
/// weights are not modeled.
class DataGraph {
 public:
  static DataGraph Build(const Database& db, const SchemaGraph& schema_graph);

  size_t num_nodes() const { return adjacency_.size(); }
  size_t num_edges() const { return num_edges_; }

  uint32_t NodeOf(TupleId id) const {
    return relation_offset_[id.relation()] + static_cast<uint32_t>(id.row());
  }
  TupleId TupleOf(uint32_t node) const;

  const std::vector<uint32_t>& Neighbors(uint32_t node) const {
    return adjacency_[node];
  }
  size_t Degree(uint32_t node) const { return adjacency_[node].size(); }

 private:
  std::vector<uint32_t> relation_offset_;
  std::vector<std::vector<uint32_t>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace matcn

#endif  // MATCN_DATAGRAPH_DATA_GRAPH_H_
