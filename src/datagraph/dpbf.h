#ifndef MATCN_DATAGRAPH_DPBF_H_
#define MATCN_DATAGRAPH_DPBF_H_

#include <vector>

#include "core/keyword_query.h"
#include "datagraph/banks.h"
#include "datagraph/data_graph.h"
#include "exec/jnt.h"
#include "indexing/term_index.h"

namespace matcn {

/// DPBF [Ding et al. 2007] ("Finding top-k min-cost connected trees in
/// databases"): best-first dynamic programming over states (v, X) — the
/// cheapest tree rooted at v covering keyword subset X — with the two
/// classic transitions:
///   grow:  D(u, X)      <- D(v, X) + w(v, u)
///   merge: D(v, X ∪ X') <- D(v, X) + D(v, X')       (X ∩ X' = ∅)
/// Unit edge weights. States popped with X = all keywords yield answer
/// trees in non-decreasing cost order; the first k distinct trees are
/// returned with score 1/(1+cost). Exact for top-1 (the min-cost group
/// Steiner tree), best-effort beyond, as in the original paper.
std::vector<Jnt> DpbfSearch(const DataGraph& graph, const TermIndex& index,
                            const KeywordQuery& query,
                            const DataGraphSearchOptions& options = {});

}  // namespace matcn

#endif  // MATCN_DATAGRAPH_DPBF_H_
