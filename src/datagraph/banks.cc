#include "datagraph/banks.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>
#include <unordered_set>

namespace matcn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Single-source (multi-seed) shortest paths with per-edge weight
/// `hub_penalty ? log2(1+deg(u)) : 1`, recording parents for path
/// reconstruction.
void Dijkstra(const DataGraph& graph, const std::vector<uint32_t>& seeds,
              bool hub_penalty, std::vector<double>* dist,
              std::vector<int64_t>* parent) {
  dist->assign(graph.num_nodes(), kInf);
  parent->assign(graph.num_nodes(), -1);
  using Entry = std::pair<double, uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  for (uint32_t s : seeds) {
    (*dist)[s] = 0.0;
    pq.emplace(0.0, s);
  }
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > (*dist)[u]) continue;
    const double w =
        hub_penalty ? std::log2(1.0 + static_cast<double>(graph.Degree(u)))
                    : 1.0;
    for (uint32_t v : graph.Neighbors(u)) {
      if (d + w < (*dist)[v]) {
        (*dist)[v] = d + w;
        (*parent)[v] = u;
        pq.emplace(d + w, v);
      }
    }
  }
}

std::vector<Jnt> GroupSteinerSearch(const DataGraph& graph,
                                    const TermIndex& index,
                                    const KeywordQuery& query,
                                    const DataGraphSearchOptions& options,
                                    bool hub_penalty) {
  const size_t m = query.size();
  std::vector<std::vector<uint32_t>> groups(m);
  for (size_t k = 0; k < m; ++k) {
    for (const TupleId& id : index.TuplesFor(query.keyword(k))) {
      groups[k].push_back(graph.NodeOf(id));
    }
    if (groups[k].empty()) return {};  // some keyword matches nothing
  }

  std::vector<std::vector<double>> dist(m);
  std::vector<std::vector<int64_t>> parent(m);
  for (size_t k = 0; k < m; ++k) {
    Dijkstra(graph, groups[k], hub_penalty, &dist[k], &parent[k]);
  }

  // Candidate roots: reached by every group. Rank by total distance.
  std::vector<std::pair<double, uint32_t>> roots;
  for (uint32_t v = 0; v < graph.num_nodes(); ++v) {
    double total = 0.0;
    bool ok = true;
    for (size_t k = 0; k < m; ++k) {
      if (dist[k][v] == kInf) {
        ok = false;
        break;
      }
      total += dist[k][v];
    }
    if (ok) roots.emplace_back(total, v);
    if (roots.size() > options.max_roots) break;
  }
  std::sort(roots.begin(), roots.end());

  std::vector<Jnt> results;
  std::unordered_set<std::string> seen;
  for (const auto& [total, root] : roots) {
    if (results.size() >= options.top_k) break;
    // Answer tree: union of the root->group shortest paths.
    std::set<uint32_t> tree_nodes;
    for (size_t k = 0; k < m; ++k) {
      uint32_t v = root;
      tree_nodes.insert(v);
      while (parent[k][v] >= 0) {
        v = static_cast<uint32_t>(parent[k][v]);
        tree_nodes.insert(v);
      }
    }
    Jnt jnt;
    jnt.cn_index = -1;
    for (uint32_t node : tree_nodes) jnt.tuples.push_back(graph.TupleOf(node));
    jnt.score = 1.0 / (1.0 + total);
    if (seen.insert(JntKey(jnt)).second) results.push_back(std::move(jnt));
  }
  return results;
}

}  // namespace

std::vector<Jnt> BanksSearch(const DataGraph& graph, const TermIndex& index,
                             const KeywordQuery& query,
                             const DataGraphSearchOptions& options) {
  return GroupSteinerSearch(graph, index, query, options,
                            /*hub_penalty=*/false);
}

std::vector<Jnt> BidirectionalSearch(const DataGraph& graph,
                                     const TermIndex& index,
                                     const KeywordQuery& query,
                                     const DataGraphSearchOptions& options) {
  return GroupSteinerSearch(graph, index, query, options,
                            /*hub_penalty=*/true);
}

}  // namespace matcn
