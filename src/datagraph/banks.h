#ifndef MATCN_DATAGRAPH_BANKS_H_
#define MATCN_DATAGRAPH_BANKS_H_

#include <vector>

#include "core/keyword_query.h"
#include "datagraph/data_graph.h"
#include "exec/jnt.h"
#include "indexing/term_index.h"

namespace matcn {

struct DataGraphSearchOptions {
  size_t top_k = 1000;
  /// Cap on candidate answer roots examined (resource guard).
  size_t max_roots = 200'000;
};

/// BANKS [Aditya et al. 2002], backward expanding search: from each
/// keyword's tuple set, expand shortest-path frontiers over the data
/// graph; every node reached by all keyword groups roots an answer tree —
/// the union of the shortest paths from the root to each group. Answers
/// are ranked by total tree weight (hop count here; the original also
/// weighs node prestige) and returned as JNTs with score 1/(1+weight).
std::vector<Jnt> BanksSearch(const DataGraph& graph, const TermIndex& index,
                             const KeywordQuery& query,
                             const DataGraphSearchOptions& options = {});

/// Bidirectional search [Kacholia et al. 2005]: same answer semantics as
/// BANKS but the expansion is activation-driven — edges out of high-degree
/// hubs are penalized with weight log2(1 + degree(u)), so paths through
/// hubs rank lower. This reproduces Bidirectional's preference for
/// low-fanout connections without its (cost-only) frontier scheduling.
std::vector<Jnt> BidirectionalSearch(
    const DataGraph& graph, const TermIndex& index,
    const KeywordQuery& query, const DataGraphSearchOptions& options = {});

}  // namespace matcn

#endif  // MATCN_DATAGRAPH_BANKS_H_
