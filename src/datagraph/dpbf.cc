#include "datagraph/dpbf.h"

#include <map>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace matcn {
namespace {

/// Backpointer for tree reconstruction: either a growth from a neighbor
/// state or a merge of two states at the same node.
struct BackPointer {
  enum class Kind { kSeed, kGrow, kMerge } kind = Kind::kSeed;
  uint32_t grow_from = 0;    // node of the child state (kGrow)
  Termset merge_left = 0;    // subsets of the two merged states (kMerge)
  Termset merge_right = 0;
};

uint64_t StateKey(uint32_t v, Termset x) {
  return (static_cast<uint64_t>(v) << 32) | x;
}

void CollectNodes(uint32_t v, Termset x,
                  const std::unordered_map<uint64_t, BackPointer>& back,
                  std::set<uint32_t>* nodes) {
  nodes->insert(v);
  auto it = back.find(StateKey(v, x));
  if (it == back.end()) return;
  const BackPointer& bp = it->second;
  switch (bp.kind) {
    case BackPointer::Kind::kSeed:
      return;
    case BackPointer::Kind::kGrow:
      CollectNodes(bp.grow_from, x, back, nodes);
      return;
    case BackPointer::Kind::kMerge:
      CollectNodes(v, bp.merge_left, back, nodes);
      CollectNodes(v, bp.merge_right, back, nodes);
      return;
  }
}

}  // namespace

std::vector<Jnt> DpbfSearch(const DataGraph& graph, const TermIndex& index,
                            const KeywordQuery& query,
                            const DataGraphSearchOptions& options) {
  const Termset full = query.FullTermset();
  std::unordered_map<uint64_t, double> cost;
  std::unordered_map<uint64_t, BackPointer> back;
  // Finalized keyword subsets per node (for merge enumeration).
  std::unordered_map<uint32_t, std::vector<Termset>> done;

  using Entry = std::pair<double, uint64_t>;  // (cost, state key)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;

  for (size_t k = 0; k < query.size(); ++k) {
    const Termset x = Termset{1} << k;
    bool any = false;
    for (const TupleId& id : index.TuplesFor(query.keyword(k))) {
      const uint32_t v = graph.NodeOf(id);
      const uint64_t key = StateKey(v, x);
      auto it = cost.find(key);
      if (it == cost.end() || it->second > 0.0) {
        cost[key] = 0.0;
        back[key] = BackPointer{};  // seed
        pq.emplace(0.0, key);
      }
      any = true;
    }
    if (!any) return {};
  }

  std::vector<Jnt> results;
  std::unordered_set<std::string> seen;
  std::unordered_set<uint64_t> settled;
  size_t popped = 0;

  while (!pq.empty() && results.size() < options.top_k) {
    auto [c, key] = pq.top();
    pq.pop();
    if (++popped > options.max_roots * 8) break;  // resource guard
    auto cit = cost.find(key);
    if (cit == cost.end() || c > cit->second) continue;
    if (!settled.insert(key).second) continue;
    const uint32_t v = static_cast<uint32_t>(key >> 32);
    const Termset x = static_cast<Termset>(key & 0xffffffffu);

    if (x == full) {
      std::set<uint32_t> nodes;
      CollectNodes(v, x, back, &nodes);
      Jnt jnt;
      jnt.cn_index = -1;
      for (uint32_t node : nodes) jnt.tuples.push_back(graph.TupleOf(node));
      jnt.score = 1.0 / (1.0 + c);
      if (seen.insert(JntKey(jnt)).second) results.push_back(std::move(jnt));
      continue;
    }

    // Grow.
    for (uint32_t u : graph.Neighbors(v)) {
      const uint64_t ukey = StateKey(u, x);
      auto it = cost.find(ukey);
      if (it == cost.end() || it->second > c + 1.0) {
        cost[ukey] = c + 1.0;
        BackPointer bp;
        bp.kind = BackPointer::Kind::kGrow;
        bp.grow_from = v;
        back[ukey] = bp;
        pq.emplace(c + 1.0, ukey);
      }
    }
    // Merge with settled disjoint subsets at the same node.
    for (Termset other : done[v]) {
      if ((other & x) != 0) continue;
      const uint64_t mkey = StateKey(v, x | other);
      const double mcost = c + cost[StateKey(v, other)];
      auto it = cost.find(mkey);
      if (it == cost.end() || it->second > mcost) {
        cost[mkey] = mcost;
        BackPointer bp;
        bp.kind = BackPointer::Kind::kMerge;
        bp.merge_left = x;
        bp.merge_right = other;
        back[mkey] = bp;
        pq.emplace(mcost, mkey);
      }
    }
    done[v].push_back(x);
  }
  return results;
}

}  // namespace matcn
