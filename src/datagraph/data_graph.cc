#include "datagraph/data_graph.h"

#include <algorithm>
#include <unordered_map>

namespace matcn {

DataGraph DataGraph::Build(const Database& db,
                           const SchemaGraph& schema_graph) {
  DataGraph g;
  g.relation_offset_.resize(db.num_relations());
  uint32_t offset = 0;
  for (RelationId r = 0; r < db.num_relations(); ++r) {
    g.relation_offset_[r] = offset;
    offset += static_cast<uint32_t>(db.relation(r).num_tuples());
  }
  g.adjacency_.resize(offset);

  // Instantiate every schema edge: hash the referenced side's key column,
  // then stream the holder side's FK values through it.
  for (RelationId a = 0; a < db.num_relations(); ++a) {
    for (RelationId b : schema_graph.Neighbors(a)) {
      if (b < a) continue;  // visit each undirected edge once
      const SchemaEdge* edge = schema_graph.Edge(a, b);
      const Relation& holder = db.relation(edge->holder);
      const Relation& referenced = db.relation(edge->referenced);
      std::unordered_map<Value, std::vector<uint32_t>, ValueHash> key_rows;
      for (uint64_t row = 0; row < referenced.num_tuples(); ++row) {
        key_rows[referenced.tuple(row)[edge->referenced_attribute]]
            .push_back(static_cast<uint32_t>(row));
      }
      for (uint64_t row = 0; row < holder.num_tuples(); ++row) {
        const Value& fk = holder.tuple(row)[edge->holder_attribute];
        auto it = key_rows.find(fk);
        if (it == key_rows.end()) continue;
        const uint32_t holder_node =
            g.relation_offset_[edge->holder] + static_cast<uint32_t>(row);
        for (uint32_t ref_row : it->second) {
          const uint32_t ref_node =
              g.relation_offset_[edge->referenced] + ref_row;
          g.adjacency_[holder_node].push_back(ref_node);
          g.adjacency_[ref_node].push_back(holder_node);
        }
      }
    }
  }
  size_t degree_sum = 0;
  for (std::vector<uint32_t>& nbrs : g.adjacency_) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    degree_sum += nbrs.size();
  }
  g.num_edges_ = degree_sum / 2;
  return g;
}

TupleId DataGraph::TupleOf(uint32_t node) const {
  // relation_offset_ is nondecreasing; find the owning relation.
  auto it = std::upper_bound(relation_offset_.begin(),
                             relation_offset_.end(), node);
  const RelationId rel =
      static_cast<RelationId>(it - relation_offset_.begin() - 1);
  return TupleId(rel, node - relation_offset_[rel]);
}

}  // namespace matcn
