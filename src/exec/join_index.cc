#include "exec/join_index.h"

namespace matcn {

const std::vector<uint64_t>& JoinIndex::Rows(RelationId relation,
                                             uint32_t attribute,
                                             const Value& value) {
  const uint64_t key = (static_cast<uint64_t>(relation) << 32) | attribute;
  auto it = maps_.find(key);
  if (it == maps_.end()) {
    ValueMap map;
    const Relation& rel = db_->relation(relation);
    for (uint64_t row = 0; row < rel.num_tuples(); ++row) {
      map[rel.tuple(row)[attribute]].push_back(row);
    }
    it = maps_.emplace(key, std::move(map)).first;
  }
  auto rows = it->second.find(value);
  return rows == it->second.end() ? empty_ : rows->second;
}

}  // namespace matcn
