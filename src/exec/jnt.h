#ifndef MATCN_EXEC_JNT_H_
#define MATCN_EXEC_JNT_H_

#include <string>
#include <vector>

#include "storage/tuple_id.h"

namespace matcn {

/// A joining network of tuples (Definition 1) produced by evaluating a
/// candidate network: one tuple per CN node, aligned positionally with the
/// CN's node vector. Scores are attached by the evaluation algorithms.
struct Jnt {
  /// Index of the CN (within the evaluated CN set) this JNT instantiates.
  int cn_index = 0;
  /// tuples[i] instantiates CN node i.
  std::vector<TupleId> tuples;
  double score = 0.0;
};

/// Canonical identity of a JNT for relevance judgements: the sorted tuple
/// id multiset rendered as a string. Two JNTs that join the same tuples
/// denote the same answer regardless of which CN produced them.
std::string JntKey(const Jnt& jnt);

}  // namespace matcn

#endif  // MATCN_EXEC_JNT_H_
