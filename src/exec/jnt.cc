#include "exec/jnt.h"

#include <algorithm>

namespace matcn {

std::string JntKey(const Jnt& jnt) {
  std::vector<uint64_t> ids;
  ids.reserve(jnt.tuples.size());
  for (const TupleId& t : jnt.tuples) ids.push_back(t.packed());
  std::sort(ids.begin(), ids.end());
  std::string key;
  for (uint64_t id : ids) {
    key += std::to_string(id);
    key += ',';
  }
  return key;
}

}  // namespace matcn
