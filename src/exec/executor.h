#ifndef MATCN_EXEC_EXECUTOR_H_
#define MATCN_EXEC_EXECUTOR_H_

#include <unordered_set>
#include <utility>
#include <vector>

#include "core/candidate_network.h"
#include "core/tuple_set.h"
#include "exec/jnt.h"
#include "exec/join_index.h"
#include "graph/schema_graph.h"
#include "storage/database.h"

namespace matcn {

/// Evaluates candidate networks against a Database, producing joining
/// networks of tuples. This is the role the RDBMS plays in the paper's
/// step (4): the CN's tree edges become FK equi-joins (hash lookups via
/// JoinIndex) and its nodes constrain which tuples may appear:
///   * non-free nodes draw only from their tuple-set's tuple list;
///   * free nodes draw only from tuples containing *no* query keyword
///     (Definition 4 with K = {}), which the executor derives as the
///     complement of all tuple-set members;
///   * all tuples of a JNT are pairwise distinct (a JNT is a tree of
///     tuples, and duplicate tuples would make it non-minimal).
class CnExecutor {
 public:
  CnExecutor(const Database* db, const SchemaGraph* schema_graph);

  CnExecutor(const CnExecutor&) = delete;
  CnExecutor& operator=(const CnExecutor&) = delete;

  /// Installs the query's tuple-sets (R_Q). Must be called before
  /// Execute*; node tuple_set_index values refer into this vector.
  void SetQueryContext(const std::vector<TupleSet>* tuple_sets);

  /// Enumerates JNTs of `cn`, up to `max_results` (0 = all). Results carry
  /// `cn_index` and score 0 (scoring is the evaluators' job).
  std::vector<Jnt> Execute(const CandidateNetwork& cn, int cn_index,
                           size_t max_results = 0);

  /// Like Execute but with some nodes pinned to specific tuples — the
  /// verification primitive of Skyline-Sweeping (fix the non-free tuples,
  /// check the combination connects through free tuples).
  std::vector<Jnt> ExecuteWithFixed(
      const CandidateNetwork& cn, int cn_index,
      const std::vector<std::pair<int, TupleId>>& fixed,
      size_t max_results = 0);

  /// Join-unconstrained candidates for one CN node.
  std::vector<TupleId> NodeCandidates(const CandidateNetwork& cn,
                                      int node) const;

  const Database& db() const { return *db_; }

 private:
  bool IsContaminated(TupleId id) const {
    return contaminated_.contains(id.packed());
  }
  bool InTupleSet(int tuple_set_index, TupleId id) const;

  const Database* db_;
  const SchemaGraph* schema_graph_;
  JoinIndex join_index_;
  const std::vector<TupleSet>* tuple_sets_ = nullptr;
  std::unordered_set<uint64_t> contaminated_;
  // Lazily built membership sets, aligned with tuple_sets_.
  mutable std::vector<std::unordered_set<uint64_t>> membership_;
};

}  // namespace matcn

#endif  // MATCN_EXEC_EXECUTOR_H_
