#include "exec/executor.h"

#include <algorithm>

namespace matcn {

CnExecutor::CnExecutor(const Database* db, const SchemaGraph* schema_graph)
    : db_(db), schema_graph_(schema_graph), join_index_(db) {}

void CnExecutor::SetQueryContext(const std::vector<TupleSet>* tuple_sets) {
  tuple_sets_ = tuple_sets;
  contaminated_.clear();
  membership_.assign(tuple_sets_->size(), {});
  for (const TupleSet& ts : *tuple_sets_) {
    for (const TupleId& id : ts.tuples) contaminated_.insert(id.packed());
  }
}

bool CnExecutor::InTupleSet(int tuple_set_index, TupleId id) const {
  std::unordered_set<uint64_t>& members = membership_[tuple_set_index];
  if (members.empty()) {
    for (const TupleId& t : (*tuple_sets_)[tuple_set_index].tuples) {
      members.insert(t.packed());
    }
  }
  return members.contains(id.packed());
}

std::vector<TupleId> CnExecutor::NodeCandidates(const CandidateNetwork& cn,
                                                int node) const {
  const CnNode& n = cn.node(node);
  if (!n.is_free()) return (*tuple_sets_)[n.tuple_set_index].tuples;
  std::vector<TupleId> out;
  const Relation& rel = db_->relation(n.relation);
  out.reserve(rel.num_tuples());
  for (uint64_t row = 0; row < rel.num_tuples(); ++row) {
    TupleId id(n.relation, row);
    if (!IsContaminated(id)) out.push_back(id);
  }
  return out;
}

std::vector<Jnt> CnExecutor::Execute(const CandidateNetwork& cn,
                                     int cn_index, size_t max_results) {
  return ExecuteWithFixed(cn, cn_index, {}, max_results);
}

std::vector<Jnt> CnExecutor::ExecuteWithFixed(
    const CandidateNetwork& cn, int cn_index,
    const std::vector<std::pair<int, TupleId>>& fixed, size_t max_results) {
  const int n = static_cast<int>(cn.size());
  std::vector<const TupleId*> pinned(n, nullptr);
  for (const auto& [node, id] : fixed) pinned[node] = &id;

  // Pick the enumeration root: prefer a pinned node, else the node with
  // the smallest unconstrained candidate count.
  int root = 0;
  size_t best = SIZE_MAX;
  for (int i = 0; i < n; ++i) {
    size_t cost;
    if (pinned[i] != nullptr) {
      cost = 0;
    } else if (!cn.node(i).is_free()) {
      cost = (*tuple_sets_)[cn.node(i).tuple_set_index].tuples.size();
    } else {
      cost = db_->relation(cn.node(i).relation).num_tuples();
    }
    if (cost < best) {
      best = cost;
      root = i;
    }
  }

  // BFS order from the root over the tree; order_parent[k] is the position
  // (within `order`) of the already-assigned neighbor of order[k].
  const std::vector<std::vector<int>> adj = cn.Adjacency();
  std::vector<int> order = {root};
  std::vector<int> order_parent = {-1};
  std::vector<bool> visited(n, false);
  visited[root] = true;
  for (size_t head = 0; head < order.size(); ++head) {
    for (int nbr : adj[order[head]]) {
      if (!visited[nbr]) {
        visited[nbr] = true;
        order.push_back(nbr);
        order_parent.push_back(static_cast<int>(head));
      }
    }
  }

  std::vector<Jnt> results;
  std::vector<TupleId> assignment(n);

  // Depth-first enumeration over `order`.
  struct Frame {
    std::vector<TupleId> candidates;
    size_t next = 0;
  };
  std::vector<Frame> stack(1);
  {
    const int node = order[0];
    if (pinned[node] != nullptr) {
      stack[0].candidates = {*pinned[node]};
    } else {
      stack[0].candidates = NodeCandidates(cn, node);
    }
  }

  auto admissible = [&](int node, TupleId id, size_t depth) {
    const CnNode& cn_node = cn.node(node);
    if (pinned[node] != nullptr && *pinned[node] != id) return false;
    if (cn_node.is_free()) {
      if (IsContaminated(id)) return false;
    } else if (!InTupleSet(cn_node.tuple_set_index, id)) {
      return false;
    }
    // Distinctness against previously assigned nodes of the same relation.
    for (size_t d = 0; d < depth; ++d) {
      if (cn.node(order[d]).relation == cn_node.relation &&
          assignment[order[d]] == id) {
        return false;
      }
    }
    return true;
  };

  while (!stack.empty()) {
    Frame& frame = stack.back();
    const size_t depth = stack.size() - 1;
    const int node = order[depth];
    if (frame.next >= frame.candidates.size()) {
      stack.pop_back();
      continue;
    }
    const TupleId candidate = frame.candidates[frame.next++];
    if (!admissible(node, candidate, depth)) continue;
    assignment[node] = candidate;
    if (depth + 1 == order.size()) {
      Jnt jnt;
      jnt.cn_index = cn_index;
      jnt.tuples = assignment;
      results.push_back(std::move(jnt));
      if (max_results > 0 && results.size() >= max_results) return results;
      continue;
    }
    // Push the next node's frame: candidates joined with its parent.
    const int next_node = order[depth + 1];
    const int parent_pos = order_parent[depth + 1];
    const TupleId parent_tuple = assignment[order[parent_pos]];
    const CnNode& child = cn.node(next_node);
    const CnNode& parent = cn.node(order[parent_pos]);
    const SchemaEdge* edge =
        schema_graph_->Edge(child.relation, parent.relation);
    Frame next_frame;
    if (edge != nullptr) {
      const Tuple& ptuple = db_->tuple(parent_tuple);
      const bool child_holds = edge->holder == child.relation;
      const Value& key =
          ptuple[child_holds ? edge->referenced_attribute
                             : edge->holder_attribute];
      const uint32_t child_attr = child_holds ? edge->holder_attribute
                                              : edge->referenced_attribute;
      for (uint64_t row :
           join_index_.Rows(child.relation, child_attr, key)) {
        next_frame.candidates.emplace_back(child.relation, row);
      }
    }
    stack.push_back(std::move(next_frame));
  }
  return results;
}

}  // namespace matcn
