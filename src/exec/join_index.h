#ifndef MATCN_EXEC_JOIN_INDEX_H_
#define MATCN_EXEC_JOIN_INDEX_H_

#include <unordered_map>
#include <vector>

#include "storage/database.h"

namespace matcn {

/// Lazily-built hash indexes over (relation, attribute) pairs, the join
/// primitive behind CN evaluation: given a key value, returns the rows of
/// a relation whose attribute equals it. Plays the role of the RDBMS's
/// indexes/hash joins in the paper's evaluation step.
class JoinIndex {
 public:
  explicit JoinIndex(const Database* db) : db_(db) {}

  JoinIndex(const JoinIndex&) = delete;
  JoinIndex& operator=(const JoinIndex&) = delete;

  /// Rows of `relation` with `attribute` == `value`. The first call for a
  /// (relation, attribute) pair builds its hash map in O(|relation|).
  const std::vector<uint64_t>& Rows(RelationId relation, uint32_t attribute,
                                    const Value& value);

 private:
  using ValueMap =
      std::unordered_map<Value, std::vector<uint64_t>, ValueHash>;

  const Database* db_;
  std::unordered_map<uint64_t, ValueMap> maps_;  // key: rel<<32 | attr
  const std::vector<uint64_t> empty_;
};

}  // namespace matcn

#endif  // MATCN_EXEC_JOIN_INDEX_H_
