#ifndef MATCN_OBS_LOG_H_
#define MATCN_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace matcn::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

std::string_view LogLevelName(LogLevel level);

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-sensitive). Returns
/// false and leaves `out` untouched on anything else.
bool ParseLogLevel(std::string_view text, LogLevel* out);

/// Process-wide leveled structured logger. One line per event, rendered
/// as logfmt (`ts=... level=info msg="..." k=v`) or JSON; writes go to
/// stderr by default or to an installed sink (tests capture lines that
/// way). Level filtering is a single relaxed atomic load, done *before*
/// any argument formatting via the MATCN_LOG macro, so disabled levels
/// cost one branch.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string& line)>;

  static Logger& Global();

  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           min_level_.load(std::memory_order_relaxed);
  }

  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }

  /// JSON lines instead of logfmt.
  void set_json(bool json) { json_.store(json, std::memory_order_relaxed); }
  bool json() const { return json_.load(std::memory_order_relaxed); }

  /// Replaces stderr output; pass nullptr to restore stderr. The sink is
  /// called with the fully rendered line (no trailing newline).
  void SetSinkForTest(Sink sink);

  /// Renders and emits one event. Called by LogMessage's destructor.
  void Write(LogLevel level, std::string_view msg,
             const std::vector<std::pair<std::string, std::string>>& fields);

 private:
  Logger() = default;

  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<bool> json_{false};
  std::mutex sink_mu_;  // guards sink_ and serializes stderr writes
  Sink sink_;
};

/// One in-flight log event: collects a free-text message via operator<<
/// and typed key/value fields via Field(); renders + emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Global().Write(level_, stream_.str(), fields_); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  LogMessage& Field(std::string_view key, std::string_view value) {
    fields_.emplace_back(std::string(key), std::string(value));
    return *this;
  }
  LogMessage& Field(std::string_view key, const char* value) {
    return Field(key, std::string_view(value));
  }
  LogMessage& Field(std::string_view key, const std::string& value) {
    return Field(key, std::string_view(value));
  }
  template <typename T>
  LogMessage& Field(std::string_view key, T value)
    requires std::is_arithmetic_v<T>
  {
    std::ostringstream os;
    os << value;
    fields_.emplace_back(std::string(key), os.str());
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace matcn::obs

// Usage: MATCN_LOG(Info) << "drain started"; or with structured fields:
//   MATCN_LOG(Warn).Field("query", q).Field("ms", ms) << "slow query";
// The dangling-else shape makes the level check happen before any
// argument evaluation, so disabled levels never format anything.
#define MATCN_LOG(severity)                                       \
  if (!::matcn::obs::Logger::Global().Enabled(                    \
          ::matcn::obs::LogLevel::k##severity)) {                 \
  } else                                                          \
    ::matcn::obs::LogMessage(::matcn::obs::LogLevel::k##severity)

#endif  // MATCN_OBS_LOG_H_
