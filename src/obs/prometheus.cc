#include "obs/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

namespace matcn::obs {
namespace {

// Integers render exactly (counters are int64s at heart); everything
// else gets enough digits to round-trip for monitoring purposes.
std::string FormatValue(double value) {
  char buf[64];
  if (std::floor(value) == value && std::fabs(value) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", value);
  }
  return buf;
}

bool ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head(name[0])) return false;
  for (size_t i = 1; i < name.size(); ++i) {
    if (!tail(name[i])) return false;
  }
  return true;
}

void AppendEscapedLabelValue(std::string* out, std::string_view v) {
  for (char c : v) {
    if (c == '\\' || c == '"') {
      *out += '\\';
      *out += c;
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      *out += c;
    }
  }
}

}  // namespace

void PrometheusWriter::Header(std::string_view name, std::string_view help,
                              std::string_view type) {
  text_ += "# HELP ";
  text_.append(name);
  text_ += ' ';
  text_.append(help);
  text_ += "\n# TYPE ";
  text_.append(name);
  text_ += ' ';
  text_.append(type);
  text_ += '\n';
}

void PrometheusWriter::Line(std::string_view name, std::string_view labels,
                            double value) {
  text_.append(name);
  text_.append(labels);
  text_ += ' ';
  text_ += FormatValue(value);
  text_ += '\n';
}

void PrometheusWriter::Counter(std::string_view name, std::string_view help,
                               double value) {
  Header(name, help, "counter");
  Line(name, "", value);
}

void PrometheusWriter::Gauge(std::string_view name, std::string_view help,
                             double value) {
  Header(name, help, "gauge");
  Line(name, "", value);
}

void PrometheusWriter::Sample(
    std::string_view name,
    const std::vector<std::pair<std::string, std::string>>& labels,
    double value) {
  std::string rendered;
  if (!labels.empty()) {
    rendered += '{';
    bool first = true;
    for (const auto& [key, val] : labels) {
      if (!first) rendered += ',';
      first = false;
      rendered += key;
      rendered += "=\"";
      AppendEscapedLabelValue(&rendered, val);
      rendered += '"';
    }
    rendered += '}';
  }
  Line(name, rendered, value);
}

void PrometheusWriter::Histogram(
    std::string_view name, std::string_view help,
    const std::vector<std::pair<double, uint64_t>>& buckets, uint64_t count,
    double sum) {
  Header(name, help, "histogram");
  const std::string bucket_name = std::string(name) + "_bucket";
  for (const auto& [edge, cumulative] : buckets) {
    std::string labels = "{le=\"";
    labels += FormatValue(edge);
    labels += "\"}";
    Line(bucket_name, labels, static_cast<double>(cumulative));
  }
  Line(bucket_name, "{le=\"+Inf\"}", static_cast<double>(count));
  Line(std::string(name) + "_sum", "", sum);
  Line(std::string(name) + "_count", "", static_cast<double>(count));
}

namespace {

struct HistogramCheck {
  std::vector<std::pair<std::string, double>> buckets;  // (le, cumulative)
  double count = -1;
  bool saw_count = false;
};

// Strips _bucket/_sum/_count to find the family a sample belongs to,
// given the set of TYPE-declared names.
std::string FamilyFor(const std::string& name,
                      const std::map<std::string, std::string>& types) {
  if (types.count(name)) return name;
  for (std::string_view suffix : {"_bucket", "_sum", "_count"}) {
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      std::string base = name.substr(0, name.size() - suffix.size());
      auto it = types.find(base);
      if (it != types.end() && it->second == "histogram") return base;
    }
  }
  return "";
}

}  // namespace

std::string ValidateExposition(std::string_view body) {
  if (body.empty()) return "empty exposition body";
  std::map<std::string, std::string> types;
  std::map<std::string, HistogramCheck> histograms;
  std::set<std::string> closed_families;
  std::string current_family;
  size_t line_no = 0;
  size_t pos = 0;
  bool saw_sample = false;
  while (pos <= body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) eol = body.size();
    std::string_view line = body.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    auto fail = [&](const std::string& why) {
      return "line " + std::to_string(line_no) + ": " + why + " [" +
             std::string(line.substr(0, 80)) + "]";
    };
    if (line.empty()) {
      if (pos > body.size()) break;
      continue;
    }
    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name type"; other comments pass.
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string_view rest = line.substr(7);
        size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) return fail("malformed TYPE line");
        std::string name(rest.substr(0, sp));
        std::string type(rest.substr(sp + 1));
        if (!ValidMetricName(name)) return fail("bad metric name in TYPE");
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return fail("unknown metric type '" + type + "'");
        }
        if (types.count(name)) return fail("duplicate TYPE for " + name);
        types[name] = type;
      } else if (line.rfind("# HELP ", 0) == 0) {
        std::string_view rest = line.substr(7);
        size_t sp = rest.find(' ');
        std::string name(sp == std::string_view::npos ? rest
                                                      : rest.substr(0, sp));
        if (!ValidMetricName(name)) return fail("bad metric name in HELP");
      }
      continue;
    }
    // Sample line: name[{labels}] value [timestamp]
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string_view::npos) {
      return fail("sample line with no value");
    }
    std::string name(line.substr(0, name_end));
    if (!ValidMetricName(name)) return fail("bad metric name");
    std::string le_value;
    size_t value_start = name_end;
    if (line[name_end] == '{') {
      size_t close = line.find('}', name_end);
      if (close == std::string_view::npos) return fail("unterminated labels");
      std::string_view labels = line.substr(name_end + 1, close - name_end - 1);
      // Extract le="..." if present (for histogram bucket checks).
      size_t le = labels.find("le=\"");
      if (le != std::string_view::npos) {
        size_t le_end = labels.find('"', le + 4);
        if (le_end == std::string_view::npos) return fail("unterminated le");
        le_value = std::string(labels.substr(le + 4, le_end - le - 4));
      }
      value_start = close + 1;
    }
    if (value_start >= line.size() || line[value_start] != ' ') {
      return fail("missing space before value");
    }
    std::string value_text(line.substr(value_start + 1));
    // Drop an optional timestamp.
    size_t sp = value_text.find(' ');
    if (sp != std::string::npos) value_text.resize(sp);
    char* end = nullptr;
    double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str() || *end != '\0') {
      if (value_text != "+Inf" && value_text != "-Inf" &&
          value_text != "NaN") {
        return fail("unparseable value '" + value_text + "'");
      }
    }
    saw_sample = true;
    std::string family = FamilyFor(name, types);
    if (family.empty()) return fail("sample with no preceding TYPE: " + name);
    if (family != current_family) {
      if (closed_families.count(family)) {
        return fail("family " + family + " is not contiguous");
      }
      if (!current_family.empty()) closed_families.insert(current_family);
      current_family = family;
    }
    if (types[family] == "histogram") {
      HistogramCheck& check = histograms[family];
      if (name == family + "_bucket") {
        if (le_value.empty()) return fail("histogram bucket without le");
        check.buckets.emplace_back(le_value, value);
      } else if (name == family + "_count") {
        check.count = value;
        check.saw_count = true;
      }
    }
  }
  if (!saw_sample) return "no samples in exposition body";
  for (const auto& [family, check] : histograms) {
    if (check.buckets.empty()) {
      return "histogram " + family + " has no buckets";
    }
    double prev = -1;
    double prev_edge = -HUGE_VAL;
    bool saw_inf = false;
    for (const auto& [le, cumulative] : check.buckets) {
      if (cumulative < prev) {
        return "histogram " + family + " bucket counts not cumulative at le=" +
               le;
      }
      prev = cumulative;
      if (le == "+Inf") {
        saw_inf = true;
      } else {
        double edge = std::strtod(le.c_str(), nullptr);
        if (edge <= prev_edge) {
          return "histogram " + family + " bucket edges not ascending at le=" +
                 le;
        }
        prev_edge = edge;
      }
    }
    if (!saw_inf) return "histogram " + family + " missing +Inf bucket";
    if (!check.saw_count) return "histogram " + family + " missing _count";
    if (check.buckets.back().second != check.count) {
      return "histogram " + family + " +Inf bucket != _count";
    }
  }
  return "";
}

std::vector<std::pair<double, uint64_t>> CoarsenBucketsToSeconds(
    const std::vector<std::pair<int64_t, uint64_t>>& buckets_micros,
    size_t max_buckets) {
  std::vector<std::pair<double, uint64_t>> out;
  if (buckets_micros.empty() || max_buckets == 0) return out;
  // Stable thinning: keep every stride-th edge (counting from the end so
  // the last, largest edge always survives). Cumulative counts make the
  // merge lossless for the kept edges, and a fixed input layout makes
  // the output layout identical across scrapes — Prometheus requires
  // stable bucket schemas for rate() over _bucket series.
  const size_t n = buckets_micros.size();
  const size_t stride = (n + max_buckets - 1) / max_buckets;
  out.reserve(n / stride + 1);
  for (size_t i = 0; i < n; ++i) {
    const bool keep = ((n - 1 - i) % stride) == 0;
    if (!keep) continue;
    out.emplace_back(static_cast<double>(buckets_micros[i].first) / 1e6,
                     buckets_micros[i].second);
  }
  return out;
}

}  // namespace matcn::obs
