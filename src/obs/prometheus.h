#ifndef MATCN_OBS_PROMETHEUS_H_
#define MATCN_OBS_PROMETHEUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace matcn::obs {

/// Metric semantics tag carried by the stats field-visitors: counters
/// are monotonic since process start, gauges are point-in-time values.
/// The Prometheus exporter maps these onto # TYPE lines; ToString-style
/// renderers ignore them.
enum class MetricKind { kCounter, kGauge };

/// Builds a Prometheus text-format (version 0.0.4) exposition page.
/// Purely an encoder: callers snapshot their stats and feed the numbers
/// in; nothing here touches live counters. Metric families must be
/// emitted contiguously (all samples of one name together), which the
/// Counter/Gauge/Histogram helpers guarantee per call.
class PrometheusWriter {
 public:
  void Counter(std::string_view name, std::string_view help, double value);
  void Gauge(std::string_view name, std::string_view help, double value);

  /// Labeled single sample appended to the *current* family — call right
  /// after the Counter/Gauge that opened the family, with the same name.
  void Sample(std::string_view name,
              const std::vector<std::pair<std::string, std::string>>& labels,
              double value);

  /// Full histogram family: `buckets` are (upper-edge, cumulative-count)
  /// pairs in ascending edge order; the implicit +Inf bucket is added
  /// from `count`. `sum` is in the metric's own unit.
  void Histogram(std::string_view name, std::string_view help,
                 const std::vector<std::pair<double, uint64_t>>& buckets,
                 uint64_t count, double sum);

  const std::string& text() const { return text_; }
  std::string Release() { return std::move(text_); }

 private:
  void Header(std::string_view name, std::string_view help,
              std::string_view type);
  void Line(std::string_view name, std::string_view labels, double value);

  std::string text_;
};

/// Checks a scrape body for exposition-format validity: every sample
/// line parses (name{labels} value), every name matches [a-zA-Z_:][a-zA-Z0-9_:]*,
/// # TYPE precedes its samples, histogram bucket counts are cumulative
/// and end with +Inf == count. Returns an empty string when valid, else
/// a description of the first problem. Shared by tests and the CI smoke
/// path (`matcn_server --smoke` fails on a malformed page).
std::string ValidateExposition(std::string_view body);

/// Coarsens raw cumulative histogram buckets (upper edges in micros) to
/// at most `max_buckets` edges by merging adjacent buckets, preserving
/// cumulative counts, and converts edges to seconds. The final cumulative
/// count is kept exact; intermediate edges are thinned, never shifted.
std::vector<std::pair<double, uint64_t>> CoarsenBucketsToSeconds(
    const std::vector<std::pair<int64_t, uint64_t>>& buckets_micros,
    size_t max_buckets);

}  // namespace matcn::obs

#endif  // MATCN_OBS_PROMETHEUS_H_
