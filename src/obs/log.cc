#include "obs/log.h"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace matcn::obs {
namespace {

// Wall-clock timestamp "2026-08-08T12:34:56.789Z". Logging is the one
// place wall time belongs — traces and latency math stay on the
// monotonic clock.
std::string NowRfc3339() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto secs = time_point_cast<seconds>(now);
  const auto ms = duration_cast<milliseconds>(now - secs).count();
  const std::time_t t = system_clock::to_time_t(now);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

bool NeedsQuoting(std::string_view s) {
  if (s.empty()) return true;
  for (char c : s) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' ||
        static_cast<unsigned char>(c) < 0x20) {
      return true;
    }
  }
  return false;
}

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendLogfmtValue(std::string* out, std::string_view v) {
  if (NeedsQuoting(v)) {
    *out += '"';
    AppendEscaped(out, v);
    *out += '"';
  } else {
    out->append(v);
  }
}

void AppendJsonString(std::string* out, std::string_view v) {
  *out += '"';
  AppendEscaped(out, v);
  *out += '"';
}

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else if (text == "off") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

Logger& Logger::Global() {
  static Logger* logger = new Logger();  // leaked: outlives static dtors
  return *logger;
}

void Logger::SetSinkForTest(Sink sink) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  sink_ = std::move(sink);
}

void Logger::Write(
    LogLevel level, std::string_view msg,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string line;
  line.reserve(64 + msg.size());
  if (json()) {
    line += "{\"ts\":";
    AppendJsonString(&line, NowRfc3339());
    line += ",\"level\":";
    AppendJsonString(&line, LogLevelName(level));
    line += ",\"msg\":";
    AppendJsonString(&line, msg);
    for (const auto& [key, value] : fields) {
      line += ',';
      AppendJsonString(&line, key);
      line += ':';
      AppendJsonString(&line, value);
    }
    line += '}';
  } else {
    line += "ts=";
    line += NowRfc3339();
    line += " level=";
    line += LogLevelName(level);
    line += " msg=";
    AppendLogfmtValue(&line, msg);
    for (const auto& [key, value] : fields) {
      line += ' ';
      line += key;
      line += '=';
      AppendLogfmtValue(&line, value);
    }
  }

  std::lock_guard<std::mutex> lock(sink_mu_);
  if (sink_) {
    sink_(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace matcn::obs
