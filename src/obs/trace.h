#ifndef MATCN_OBS_TRACE_H_
#define MATCN_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace matcn::obs {

/// One finished (or still-open) span as read out of a Trace. Times are
/// microseconds relative to the trace's start.
struct SpanView {
  std::string name;
  uint32_t id = 0;      // 1-based; 0 is "no span"
  uint32_t parent = 0;  // 0 = root-level
  int64_t start_us = 0;
  int64_t duration_us = 0;
  /// Optional span-defined annotation (e.g. matches solved by a MatchCN
  /// worker, CNs rendered by sql_emit). 0 when unset.
  uint64_t value = 0;
};

struct TraceSnapshot {
  std::vector<SpanView> spans;  // ordered by start time
  /// Spans dropped because the fixed buffer filled up.
  uint32_t dropped = 0;
  /// Total trace duration at snapshot time (micros since trace start).
  int64_t total_us = 0;
};

/// Per-request span buffer: a fixed array of slots claimed with one
/// fetch_add, so MatchCN's parallel workers can all open spans on the
/// same trace without locks. Lifecycle of a slot:
///
///   BeginSpan: claim index, store start/parent/end(-1), then
///              release-store the name — the name acts as the publish
///              flag, so a concurrent Snapshot() either sees a fully
///              initialized slot or skips it.
///   EndSpan:   store end time (and optional value).
///
/// Snapshot() may run while workers are still writing (a straggler pool
/// helper can outlive the query it helped): open spans are clamped to
/// "now" rather than waited for. When the buffer overflows, later
/// BeginSpan calls return 0 (a no-op span id) and `dropped` counts them.
///
/// Traces are passed around as shared_ptr: MatchCN helper tasks capture
/// the trace by value precisely because they may run after the
/// submitting request has already completed.
class Trace {
 public:
  static constexpr uint32_t kMaxSpans = 64;

  Trace() : base_(Clock::now()) {}

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Opens a span; returns its id (1-based) or 0 if the buffer is full.
  /// `name` must be a string with static storage duration (a literal).
  uint32_t BeginSpan(const char* name, uint32_t parent = 0);

  /// Closes a span. id 0 (and out-of-range ids) are ignored, so callers
  /// never need to branch on a failed BeginSpan.
  void EndSpan(uint32_t id);
  void EndSpan(uint32_t id, uint64_t value);

  /// Attaches the annotation without closing the span.
  void SetValue(uint32_t id, uint64_t value);

  /// Microseconds elapsed since the trace was created.
  int64_t ElapsedMicros() const;

  /// Reads out every published span, clamping still-open ones to now.
  /// Safe to call concurrently with BeginSpan/EndSpan.
  TraceSnapshot Snapshot() const;

  uint32_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  using Clock = std::chrono::steady_clock;

  struct Slot {
    std::atomic<const char*> name{nullptr};  // publish flag, stored last
    std::atomic<int64_t> start_us{0};
    std::atomic<int64_t> end_us{-1};  // -1 while open
    std::atomic<uint64_t> value{0};
    uint32_t parent = 0;  // written before name's release store
  };

  Clock::time_point base_;
  std::atomic<uint32_t> next_{0};
  std::atomic<uint32_t> dropped_{0};
  std::array<Slot, kMaxSpans> slots_;
};

/// Deterministic head-based sampler: the decision for the n-th query is
/// a pure function of (seed, n), so a test with a fixed seed can predict
/// exactly which submissions get traced. rate <= 0 never samples,
/// rate >= 1 always does.
class TraceSampler {
 public:
  TraceSampler(double rate, uint64_t seed);

  /// Decides for the next request (atomically consumes one sequence
  /// number). Thread-safe.
  bool Sample();

  /// The pure decision function, exposed so tests can precompute the
  /// expected sample pattern.
  static bool Decide(double rate, uint64_t seed, uint64_t sequence);

 private:
  double rate_;
  uint64_t seed_;
  std::atomic<uint64_t> next_{0};
};

/// Renders a span tree as an indented waterfall, e.g.
///   request                 12.431ms
///   |- cache_lookup          0.012ms
///   `- matchcn               9.873ms
///      `- worker  value=14   5.120ms
/// Used by matcn_ctl trace, the shell's .trace and the slow-query log.
std::string RenderWaterfall(const TraceSnapshot& snapshot);

/// One-line compact form ("request=12431us matchcn=9873us ...") for
/// structured slow-query log fields.
std::string RenderCompact(const TraceSnapshot& snapshot);

}  // namespace matcn::obs

#endif  // MATCN_OBS_TRACE_H_
