#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace matcn::obs {

namespace {

int64_t MicrosBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
}

// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer.
uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

uint32_t Trace::BeginSpan(const char* name, uint32_t parent) {
  const uint32_t index = next_.fetch_add(1, std::memory_order_relaxed);
  if (index >= kMaxSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  Slot& slot = slots_[index];
  slot.parent = parent;
  slot.start_us.store(MicrosBetween(base_, Clock::now()),
                      std::memory_order_relaxed);
  slot.end_us.store(-1, std::memory_order_relaxed);
  // Publish: a Snapshot that reads a non-null name is guaranteed (by the
  // release/acquire pair) to see the start/parent writes above.
  slot.name.store(name, std::memory_order_release);
  return index + 1;
}

void Trace::EndSpan(uint32_t id) {
  if (id == 0 || id > kMaxSpans) return;
  slots_[id - 1].end_us.store(MicrosBetween(base_, Clock::now()),
                              std::memory_order_relaxed);
}

void Trace::EndSpan(uint32_t id, uint64_t value) {
  if (id == 0 || id > kMaxSpans) return;
  slots_[id - 1].value.store(value, std::memory_order_relaxed);
  slots_[id - 1].end_us.store(MicrosBetween(base_, Clock::now()),
                              std::memory_order_relaxed);
}

void Trace::SetValue(uint32_t id, uint64_t value) {
  if (id == 0 || id > kMaxSpans) return;
  slots_[id - 1].value.store(value, std::memory_order_relaxed);
}

int64_t Trace::ElapsedMicros() const {
  return MicrosBetween(base_, Clock::now());
}

TraceSnapshot Trace::Snapshot() const {
  TraceSnapshot out;
  const int64_t now_us = ElapsedMicros();
  out.total_us = now_us;
  const uint32_t claimed =
      std::min(next_.load(std::memory_order_relaxed), kMaxSpans);
  out.spans.reserve(claimed);
  for (uint32_t i = 0; i < claimed; ++i) {
    const Slot& slot = slots_[i];
    const char* name = slot.name.load(std::memory_order_acquire);
    if (name == nullptr) continue;  // claimed but not yet published
    SpanView view;
    view.name = name;
    view.id = i + 1;
    view.parent = slot.parent;
    view.start_us = slot.start_us.load(std::memory_order_relaxed);
    const int64_t end = slot.end_us.load(std::memory_order_relaxed);
    // Open spans (a straggler worker that has not finished, or a caller
    // snapshotting mid-request) are clamped to now.
    view.duration_us = std::max<int64_t>(
        0, (end < 0 ? now_us : end) - view.start_us);
    view.value = slot.value.load(std::memory_order_relaxed);
    out.spans.push_back(std::move(view));
  }
  std::stable_sort(out.spans.begin(), out.spans.end(),
                   [](const SpanView& a, const SpanView& b) {
                     return a.start_us < b.start_us;
                   });
  out.dropped = dropped();
  return out;
}

TraceSampler::TraceSampler(double rate, uint64_t seed)
    : rate_(rate), seed_(seed) {}

bool TraceSampler::Sample() {
  const uint64_t n = next_.fetch_add(1, std::memory_order_relaxed);
  return Decide(rate_, seed_, n);
}

bool TraceSampler::Decide(double rate, uint64_t seed, uint64_t sequence) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // Map the hash into [0,1) and compare against the rate; determinism in
  // (seed, sequence) is the point — tests precompute the pattern.
  const uint64_t h = Mix64(seed ^ Mix64(sequence));
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return unit < rate;
}

namespace {

struct TreeNode {
  const SpanView* span;
  std::vector<size_t> children;  // indices into snapshot.spans
};

// `line_prefix` precedes this node's label ("├─ " etc.); `child_indent`
// is the continuation its children build on ("│  " / "   ").
void RenderNode(const std::vector<TreeNode>& nodes, size_t index,
                const std::string& line_prefix,
                const std::string& child_indent, std::string* out) {
  const SpanView& span = *nodes[index].span;
  std::string label = line_prefix + span.name;
  if (span.value != 0) {
    label += "  value=" + std::to_string(span.value);
  }
  // Column-align the duration when the label allows it.
  if (label.size() < 40) label.append(40 - label.size(), ' ');
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%9.3fms", span.duration_us / 1000.0);
  *out += label;
  *out += buf;
  *out += '\n';
  const auto& children = nodes[index].children;
  for (size_t i = 0; i < children.size(); ++i) {
    const bool last = (i + 1 == children.size());
    // ASCII connectors keep byte length == column width, so the
    // duration column stays aligned at any nesting depth.
    RenderNode(nodes, children[i], child_indent + (last ? "`- " : "|- "),
               child_indent + (last ? "   " : "|  "), out);
  }
}

}  // namespace

std::string RenderWaterfall(const TraceSnapshot& snapshot) {
  std::string out;
  if (snapshot.spans.empty()) {
    out = "(no spans)\n";
    return out;
  }
  std::vector<TreeNode> nodes(snapshot.spans.size());
  // id -> index in snapshot.spans
  std::vector<size_t> by_id(Trace::kMaxSpans + 1, SIZE_MAX);
  for (size_t i = 0; i < snapshot.spans.size(); ++i) {
    nodes[i].span = &snapshot.spans[i];
    // Snapshots decoded from the wire carry whatever ids the peer sent;
    // an out-of-range id must not index by_id. Such a span still renders
    // (as a root), it just can't be anyone's parent.
    const uint32_t id = snapshot.spans[i].id;
    if (id != 0 && id <= Trace::kMaxSpans) by_id[id] = i;
  }
  std::vector<size_t> roots;
  for (size_t i = 0; i < snapshot.spans.size(); ++i) {
    const uint32_t parent = snapshot.spans[i].parent;
    if (parent != 0 && parent <= Trace::kMaxSpans &&
        by_id[parent] != SIZE_MAX) {
      nodes[by_id[parent]].children.push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  for (size_t root : roots) {
    RenderNode(nodes, root, "", "", &out);
  }
  if (snapshot.dropped > 0) {
    out += "(+" + std::to_string(snapshot.dropped) + " spans dropped)\n";
  }
  return out;
}

std::string RenderCompact(const TraceSnapshot& snapshot) {
  std::string out;
  for (const SpanView& span : snapshot.spans) {
    if (!out.empty()) out += ' ';
    out += span.name;
    out += '=';
    out += std::to_string(span.duration_us);
    out += "us";
  }
  if (snapshot.dropped > 0) {
    out += " dropped=" + std::to_string(snapshot.dropped);
  }
  return out;
}

}  // namespace matcn::obs
