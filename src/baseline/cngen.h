#ifndef MATCN_BASELINE_CNGEN_H_
#define MATCN_BASELINE_CNGEN_H_

#include <vector>

#include "core/candidate_network.h"
#include "core/keyword_query.h"
#include "core/tuple_set_graph.h"

namespace matcn {

struct CnGenOptions {
  /// Maximum CN size in tuple-sets.
  int t_max = 5;
  /// Budget on dequeued partial trees. CNGen's exhaustive expansion of the
  /// full tuple-set graph is the paper's scalability villain — the real
  /// implementation crashes with memory exhaustion on queries with many
  /// keywords (Fig. 11). Exceeding this budget sets `failed`, emulating
  /// those crashes deterministically instead of exhausting RAM.
  size_t max_partial_trees = 500'000;
};

struct CnGenResult {
  std::vector<CandidateNetwork> cns;
  /// True when the tree budget was exhausted before the search completed
  /// (the equivalent of the baseline crashing in the paper's experiments).
  bool failed = false;
  size_t trees_dequeued = 0;
};

/// DISCOVER's CNGen [Hristidis & Papakonstantinou 2002]: exhaustive
/// breadth-first enumeration of every sound, total, minimal candidate
/// network of size <= t_max over the *full* tuple-set graph, with
/// canonical-form duplicate elimination (the fix of Markowetz et al.).
///
/// Unlike MatCNGen this cannot stop early: it must keep expanding until
/// all partial trees reach t_max, which is the behaviour the paper sets
/// out to replace. Acceptance requires the non-free termsets to form a
/// minimal cover of the query (Lemma 1), every leaf to be non-free, and
/// the tree to be sound.
CnGenResult CnGen(const KeywordQuery& query, const TupleSetGraph& graph,
                  const CnGenOptions& options = {});

}  // namespace matcn

#endif  // MATCN_BASELINE_CNGEN_H_
