#include "baseline/cngen.h"

#include <deque>
#include <unordered_set>

#include "core/minimal_cover.h"

namespace matcn {
namespace {

struct PartialTree {
  CandidateNetwork tree;
  std::vector<int> ts_nodes;  // tuple-set-graph node per tree node
  Termset covered = 0;
};

/// True if some non-free node's termset is contained in the union of the
/// other non-free nodes' termsets. Such redundancy can never be repaired
/// by growing the tree, so these partial trees are dead.
bool HasRedundantNonFree(const CandidateNetwork& tree) {
  const size_t n = tree.size();
  for (size_t i = 0; i < n; ++i) {
    if (tree.node(static_cast<int>(i)).is_free()) continue;
    Termset others = 0;
    for (size_t j = 0; j < n; ++j) {
      if (j != i) others |= tree.node(static_cast<int>(j)).termset;
    }
    if ((others | tree.node(static_cast<int>(i)).termset) == others) {
      return true;
    }
  }
  return false;
}

bool HasFreeLeaf(const CandidateNetwork& tree) {
  for (int leaf : tree.Leaves()) {
    if (tree.node(leaf).is_free()) return true;
  }
  return false;
}

}  // namespace

CnGenResult CnGen(const KeywordQuery& query, const TupleSetGraph& graph,
                  const CnGenOptions& options) {
  CnGenResult result;
  const Termset full = query.FullTermset();

  std::deque<PartialTree> queue;
  std::unordered_set<std::string> seen;

  auto make_cn_node = [&](int ts_node) {
    const TsNode& n = graph.node(ts_node);
    return CnNode{n.relation, n.termset, n.tuple_set_index};
  };

  auto consider = [&](PartialTree tree) {
    std::string canon = tree.tree.CanonicalForm();
    if (!seen.insert(std::move(canon)).second) return;
    if (HasRedundantNonFree(tree.tree)) return;
    if (tree.covered == full) {
      if (HasFreeLeaf(tree.tree)) return;  // cannot be repaired (see above)
      std::vector<Termset> termsets;
      for (const CnNode& n : tree.tree.nodes()) {
        if (!n.is_free()) termsets.push_back(n.termset);
      }
      if (IsMinimalCover(termsets, full)) {
        result.cns.push_back(tree.tree);
      }
      return;  // accepted or dead: extensions only add redundancy
    }
    if (tree.tree.size() < static_cast<size_t>(options.t_max)) {
      queue.push_back(std::move(tree));
    }
  };

  // Seed with every non-free tuple-set as a single-node tree.
  for (size_t id = 0; id < graph.num_nodes(); ++id) {
    if (graph.IsFree(static_cast<int>(id))) continue;
    PartialTree initial;
    initial.tree =
        CandidateNetwork::SingleNode(make_cn_node(static_cast<int>(id)));
    initial.ts_nodes = {static_cast<int>(id)};
    initial.covered = graph.node(static_cast<int>(id)).termset;
    consider(std::move(initial));
  }

  while (!queue.empty()) {
    if (++result.trees_dequeued > options.max_partial_trees) {
      result.failed = true;
      break;
    }
    PartialTree current = std::move(queue.front());
    queue.pop_front();

    for (size_t pos = 0; pos < current.ts_nodes.size(); ++pos) {
      for (int nbr : graph.Neighbors(current.ts_nodes[pos])) {
        if (!graph.IsFree(nbr)) {
          bool used = false;
          for (int existing : current.ts_nodes) {
            if (existing == nbr) {
              used = true;
              break;
            }
          }
          if (used) continue;
        }
        PartialTree next;
        next.tree =
            current.tree.Extend(static_cast<int>(pos), make_cn_node(nbr));
        if (!next.tree.IsSoundAround(graph.schema_graph(),
                                     static_cast<int>(pos))) {
          continue;
        }
        next.ts_nodes = current.ts_nodes;
        next.ts_nodes.push_back(nbr);
        next.covered = current.covered | graph.node(nbr).termset;
        consider(std::move(next));
      }
    }
  }
  return result;
}

}  // namespace matcn
