#ifndef MATCN_METRICS_STAGE_STATS_H_
#define MATCN_METRICS_STAGE_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace matcn {

/// Point-in-time view of the per-stage pipeline timing aggregates. All
/// means are over the runs recorded since construction.
struct StageStatsSnapshot {
  uint64_t runs = 0;
  double ts_ms_mean = 0;       // TSFind / TSFind_Mem
  double match_ms_mean = 0;    // QMGen
  double cn_ms_mean = 0;       // MatchCN
  /// Mean MatchCN parallel efficiency (busy / (wall x workers), in
  /// (0, 1]; 1.0 when every run was sequential).
  double cn_parallel_efficiency = 0;
  /// Mean number of workers that participated in MatchCN.
  double cn_workers_mean = 0;

  std::string ToString() const;
};

/// Concurrent accumulator for per-stage pipeline timings (tuple-set
/// finding, match generation, CN construction) plus the MatchCN
/// parallelism gauges. Recording is a handful of relaxed atomic adds, so
/// any worker can record without blocking; totals are kept in integer
/// microseconds (and micro-units for the efficiency ratio) because atomic
/// doubles are not portably lock-free.
class StageStats {
 public:
  void Record(double ts_ms, double match_ms, double cn_ms,
              double cn_parallel_efficiency, unsigned cn_workers) {
    Add(&ts_micros_, ts_ms);
    Add(&match_micros_, match_ms);
    Add(&cn_micros_, cn_ms);
    Add(&efficiency_micros_, cn_parallel_efficiency * 1000.0);
    cn_workers_.fetch_add(cn_workers, std::memory_order_relaxed);
    runs_.fetch_add(1, std::memory_order_relaxed);
  }

  StageStatsSnapshot Snapshot() const;

 private:
  static void Add(std::atomic<uint64_t>* c, double millis) {
    c->fetch_add(static_cast<uint64_t>(millis * 1000.0),
                 std::memory_order_relaxed);
  }

  std::atomic<uint64_t> runs_{0};
  std::atomic<uint64_t> ts_micros_{0};
  std::atomic<uint64_t> match_micros_{0};
  std::atomic<uint64_t> cn_micros_{0};
  std::atomic<uint64_t> efficiency_micros_{0};
  std::atomic<uint64_t> cn_workers_{0};
};

}  // namespace matcn

#endif  // MATCN_METRICS_STAGE_STATS_H_
