#ifndef MATCN_METRICS_LATENCY_HISTOGRAM_H_
#define MATCN_METRICS_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace matcn {

/// Raw cumulative bucket view of a LatencyHistogram, for exporters that
/// need the full distribution (Prometheus) rather than precomputed
/// quantiles. `buckets` holds (upper-edge-micros, cumulative-count)
/// pairs in ascending edge order. The full fixed layout is always
/// returned — never trimmed to the populated range — so the bucket
/// schema is identical across scrapes, which rate() over _bucket series
/// depends on.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum_micros = 0;
  int64_t max_micros = 0;
  std::vector<std::pair<int64_t, uint64_t>> buckets;
};

/// Fixed-size concurrent latency histogram with a lock-free record path:
/// `Record` is a single relaxed fetch_add on a bucket counter, so many
/// threads can record while another thread reads percentiles (reads are
/// approximate under concurrent writes, which is what a stats endpoint
/// wants).
///
/// Buckets are log-scaled with 16 linear sub-buckets per power of two
/// (HdrHistogram-style), giving <= 6.25% relative error over a range of
/// 1 microsecond to ~18 minutes. Values outside the range clamp to the
/// first/last bucket.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;

  /// Records one sample. Thread-safe, lock-free, wait-free.
  void Record(int64_t micros);

  /// Number of recorded samples.
  uint64_t Count() const;

  /// Approximate q-quantile (q in [0,1]) of recorded values, in
  /// microseconds; 0 when empty. Quantile(0.5) = p50.
  int64_t QuantileMicros(double q) const;

  double MeanMicros() const;
  int64_t MaxMicros() const;

  /// Adds every bucket of `other` into this histogram.
  void Merge(const LatencyHistogram& other);

  /// Cumulative bucket counts plus count/sum/max, read with relaxed
  /// loads (approximate under concurrent Record, like every reader
  /// here). Exporters should treat the result as monotonic cumulative
  /// state and must never pair it with Reset() — see the Reset() note.
  HistogramSnapshot SnapshotBuckets() const;

  /// Zeroes all buckets. NOT safe against concurrent Record(): a sample
  /// landing mid-reset can split across count_/sum_/bucket stores and
  /// leave the histogram internally inconsistent (count without bucket,
  /// or vice versa). Production readers — the Prometheus exporter in
  /// particular — therefore never call Reset(); they export the
  /// monotonic cumulative counts and let the scraper compute deltas
  /// with rate(). Reset() exists for tests and for single-threaded
  /// bench loops that quiesce recording first.
  void Reset();

  /// "n=1234 mean=1.2ms p50=0.9ms p95=3.1ms p99=8.8ms max=12.0ms".
  std::string Summary() const;

  /// Renders a microsecond value as "123us" / "1.23ms" / "4.56s".
  static std::string FormatMicros(int64_t micros);

 private:
  static constexpr int kSubBits = 4;                    // 16 sub-buckets
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kGroups = 26;                    // 2^4 .. 2^29 us
  static constexpr int kNumBuckets = kSub + kGroups * kSub;

  static int BucketFor(int64_t micros);
  /// Representative (upper-bound) value of bucket `index`.
  static int64_t BucketValue(int index);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

}  // namespace matcn

#endif  // MATCN_METRICS_LATENCY_HISTOGRAM_H_
