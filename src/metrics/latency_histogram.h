#ifndef MATCN_METRICS_LATENCY_HISTOGRAM_H_
#define MATCN_METRICS_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace matcn {

/// Fixed-size concurrent latency histogram with a lock-free record path:
/// `Record` is a single relaxed fetch_add on a bucket counter, so many
/// threads can record while another thread reads percentiles (reads are
/// approximate under concurrent writes, which is what a stats endpoint
/// wants).
///
/// Buckets are log-scaled with 16 linear sub-buckets per power of two
/// (HdrHistogram-style), giving <= 6.25% relative error over a range of
/// 1 microsecond to ~18 minutes. Values outside the range clamp to the
/// first/last bucket.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;

  /// Records one sample. Thread-safe, lock-free, wait-free.
  void Record(int64_t micros);

  /// Number of recorded samples.
  uint64_t Count() const;

  /// Approximate q-quantile (q in [0,1]) of recorded values, in
  /// microseconds; 0 when empty. Quantile(0.5) = p50.
  int64_t QuantileMicros(double q) const;

  double MeanMicros() const;
  int64_t MaxMicros() const;

  /// Adds every bucket of `other` into this histogram.
  void Merge(const LatencyHistogram& other);

  /// Zeroes all buckets (not thread-safe against concurrent Record).
  void Reset();

  /// "n=1234 mean=1.2ms p50=0.9ms p95=3.1ms p99=8.8ms max=12.0ms".
  std::string Summary() const;

  /// Renders a microsecond value as "123us" / "1.23ms" / "4.56s".
  static std::string FormatMicros(int64_t micros);

 private:
  static constexpr int kSubBits = 4;                    // 16 sub-buckets
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kGroups = 26;                    // 2^4 .. 2^29 us
  static constexpr int kNumBuckets = kSub + kGroups * kSub;

  static int BucketFor(int64_t micros);
  /// Representative (upper-bound) value of bucket `index`.
  static int64_t BucketValue(int index);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

}  // namespace matcn

#endif  // MATCN_METRICS_LATENCY_HISTOGRAM_H_
