#include "metrics/latency_histogram.h"

#include <bit>
#include <cstdio>

namespace matcn {

int LatencyHistogram::BucketFor(int64_t micros) {
  if (micros < 0) micros = 0;
  const uint64_t v = static_cast<uint64_t>(micros);
  if (v < kSub) return static_cast<int>(v);  // exact buckets for 0..15
  // Values with top bit at position `top` (>= kSubBits) fall in group
  // top - kSubBits + 1, sliced linearly by the next kSubBits bits.
  const int top = 63 - std::countl_zero(v);
  int group = top - kSubBits + 1;
  if (group > kGroups) group = kGroups;  // clamp beyond ~2^29 us
  const int shift = (group - 1) + (top >= kSubBits + kGroups
                                       ? top - (kSubBits + kGroups - 1)
                                       : 0);
  const int sub = static_cast<int>((v >> shift) & (kSub - 1));
  int index = group * kSub + sub;
  if (index >= kNumBuckets) index = kNumBuckets - 1;
  return index;
}

int64_t LatencyHistogram::BucketValue(int index) {
  if (index < kSub) return index;
  const int group = index / kSub;
  const int sub = index % kSub;
  // Upper edge of the sub-bucket: (16 + sub + 1) << (group - 1), minus one
  // so the value lies inside the bucket.
  return ((static_cast<int64_t>(kSub + sub + 1)) << (group - 1)) - 1;
}

void LatencyHistogram::Record(int64_t micros) {
  buckets_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(static_cast<uint64_t>(micros < 0 ? 0 : micros),
                 std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (micros > prev &&
         !max_.compare_exchange_weak(prev, micros,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

int64_t LatencyHistogram::QuantileMicros(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the requested quantile, 1-based (nearest-rank definition).
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketValue(i);
  }
  return MaxMicros();
}

double LatencyHistogram::MeanMicros() const {
  const uint64_t total = Count();
  if (total == 0) return 0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(total);
}

int64_t LatencyHistogram::MaxMicros() const {
  return max_.load(std::memory_order_relaxed);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const int64_t other_max = other.MaxMicros();
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (other_max > prev &&
         !max_.compare_exchange_weak(prev, other_max,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::SnapshotBuckets() const {
  HistogramSnapshot snap;
  snap.sum_micros = sum_.load(std::memory_order_relaxed);
  snap.max_micros = MaxMicros();
  snap.buckets.reserve(kNumBuckets);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    snap.buckets.emplace_back(BucketValue(i), cumulative);
  }
  // Concurrent Record() can make count_ lag or lead the bucket sum by a
  // few samples; pin the headline count to the bucket total so the +Inf
  // bucket always equals _count in the exposition.
  snap.count = cumulative;
  return snap;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::string LatencyHistogram::FormatMicros(int64_t micros) {
  char buf[32];
  if (micros < 1000) {
    std::snprintf(buf, sizeof(buf), "%ldus", static_cast<long>(micros));
  } else if (micros < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fms",
                  static_cast<double>(micros) / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs",
                  static_cast<double>(micros) / 1e6);
  }
  return buf;
}

std::string LatencyHistogram::Summary() const {
  std::string out = "n=" + std::to_string(Count());
  out += " mean=" + FormatMicros(static_cast<int64_t>(MeanMicros()));
  out += " p50=" + FormatMicros(QuantileMicros(0.50));
  out += " p95=" + FormatMicros(QuantileMicros(0.95));
  out += " p99=" + FormatMicros(QuantileMicros(0.99));
  out += " max=" + FormatMicros(MaxMicros());
  return out;
}

}  // namespace matcn
