#include "metrics/metrics.h"

#include <algorithm>

namespace matcn {

double AveragePrecision(const std::vector<Jnt>& ranking,
                        const GoldenStandard& golden, size_t n) {
  if (golden.empty()) return 0.0;
  double sum = 0.0;
  size_t hits = 0;
  const size_t limit = std::min(n, ranking.size());
  for (size_t k = 0; k < limit; ++k) {
    if (golden.contains(JntKey(ranking[k]))) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(k + 1);
    }
  }
  return sum / static_cast<double>(golden.size());
}

double ReciprocalRank(const std::vector<Jnt>& ranking,
                      const GoldenStandard& golden) {
  for (size_t k = 0; k < ranking.size(); ++k) {
    if (golden.contains(JntKey(ranking[k]))) {
      return 1.0 / static_cast<double>(k + 1);
    }
  }
  return 0.0;
}

double PrecisionAtK(const std::vector<Jnt>& ranking,
                    const GoldenStandard& golden, size_t k) {
  if (k == 0) return 0.0;
  size_t hits = 0;
  const size_t limit = std::min(k, ranking.size());
  for (size_t i = 0; i < limit; ++i) {
    if (golden.contains(JntKey(ranking[i]))) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace matcn
