#include "metrics/stage_stats.h"

#include <cstdio>

namespace matcn {

StageStatsSnapshot StageStats::Snapshot() const {
  StageStatsSnapshot s;
  s.runs = runs_.load(std::memory_order_relaxed);
  if (s.runs == 0) return s;
  const double n = static_cast<double>(s.runs);
  s.ts_ms_mean =
      static_cast<double>(ts_micros_.load(std::memory_order_relaxed)) /
      1000.0 / n;
  s.match_ms_mean =
      static_cast<double>(match_micros_.load(std::memory_order_relaxed)) /
      1000.0 / n;
  s.cn_ms_mean =
      static_cast<double>(cn_micros_.load(std::memory_order_relaxed)) /
      1000.0 / n;
  // efficiency_micros_ holds the ratio in micro-units (Record scales the
  // [0, 1] ratio x1000 and Add() x1000 again).
  s.cn_parallel_efficiency =
      static_cast<double>(
          efficiency_micros_.load(std::memory_order_relaxed)) /
      1'000'000.0 / n;
  s.cn_workers_mean =
      static_cast<double>(cn_workers_.load(std::memory_order_relaxed)) / n;
  return s;
}

std::string StageStatsSnapshot::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "stages[runs=%llu ts=%.3fms match=%.3fms cn=%.3fms "
                "cn_workers=%.1f cn_eff=%.2f]",
                static_cast<unsigned long long>(runs), ts_ms_mean,
                match_ms_mean, cn_ms_mean, cn_workers_mean,
                cn_parallel_efficiency);
  return buf;
}

}  // namespace matcn
