#ifndef MATCN_METRICS_METRICS_H_
#define MATCN_METRICS_METRICS_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "exec/jnt.h"

namespace matcn {

/// Relevance judgements for one query: the set of JNT keys (see JntKey)
/// considered correct answers.
using GoldenStandard = std::unordered_set<std::string>;

/// Average Precision of a ranking against a golden standard, evaluated on
/// the first n positions (the paper uses n = 1000):
///   AP = (Σ_k P(k) · rel(k)) / |R|.
/// Returns 0 when the golden standard is empty.
double AveragePrecision(const std::vector<Jnt>& ranking,
                        const GoldenStandard& golden, size_t n = 1000);

/// Reciprocal rank of the first relevant answer (0 if none in ranking).
double ReciprocalRank(const std::vector<Jnt>& ranking,
                      const GoldenStandard& golden);

/// Precision at cut-off k.
double PrecisionAtK(const std::vector<Jnt>& ranking,
                    const GoldenStandard& golden, size_t k);

/// Arithmetic mean, 0 for an empty vector (MAP / MRR aggregation).
double Mean(const std::vector<double>& values);

}  // namespace matcn

#endif  // MATCN_METRICS_METRICS_H_
