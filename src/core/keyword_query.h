#ifndef MATCN_CORE_KEYWORD_QUERY_H_
#define MATCN_CORE_KEYWORD_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace matcn {

/// A termset is a subset of the query's keywords, encoded as a bitmask
/// over keyword positions (bit i = keyword i). Queries are capped at 32
/// keywords — an order of magnitude beyond the paper's experimental
/// maximum of 10.
using Termset = uint32_t;

/// Number of keywords in a termset.
inline int TermsetSize(Termset t) { return __builtin_popcount(t); }

/// A parsed keyword query: an ordered list of distinct lowercase keywords.
class KeywordQuery {
 public:
  static constexpr size_t kMaxKeywords = 32;

  /// Parses free text into a query: tokenize, lowercase, dedup. Fails on
  /// empty input or more than kMaxKeywords distinct keywords.
  static Result<KeywordQuery> Parse(const std::string& text);

  /// Builds from an explicit keyword list (already individual words).
  static Result<KeywordQuery> FromKeywords(std::vector<std::string> keywords);

  size_t size() const { return keywords_.size(); }
  const std::vector<std::string>& keywords() const { return keywords_; }
  const std::string& keyword(size_t i) const { return keywords_[i]; }

  /// Mask with all |Q| bits set.
  Termset FullTermset() const {
    return size() == 32 ? ~Termset{0}
                        : static_cast<Termset>((uint64_t{1} << size()) - 1);
  }

  /// Renders a termset like "{denzel,washington}".
  std::string TermsetToString(Termset t) const;

  /// Index of `keyword` in the query, or -1.
  int KeywordIndex(const std::string& keyword) const;

  std::string ToString() const;

 private:
  std::vector<std::string> keywords_;
};

}  // namespace matcn

#endif  // MATCN_CORE_KEYWORD_QUERY_H_
