#ifndef MATCN_CORE_QMGEN_H_
#define MATCN_CORE_QMGEN_H_

#include <vector>

#include "common/deadline.h"
#include "core/keyword_query.h"
#include "core/tuple_set.h"

namespace matcn {

/// A query match (Definition 8): a set of non-free tuple-sets with
/// pairwise-distinct termsets whose termsets form a minimal set cover of
/// the query. Represented as a sorted vector of indexes into R_Q.
using QueryMatch = std::vector<int>;

/// Paper Algorithm 1 (QMGen), verbatim: enumerate every subset of R_Q of
/// size 1..|Q| and keep those whose termsets form a minimal cover of Q.
/// Exponential in |R_Q|; kept as the reference implementation and as the
/// ablation baseline.
std::vector<QueryMatch> GenerateMatchesNaive(
    const KeywordQuery& query, const std::vector<TupleSet>& tuple_sets);

/// Optimized QMGen: first enumerate the minimal covers of Q over the
/// *distinct termsets* present in R_Q, then expand each cover into matches
/// by taking the Cartesian product of the relations providing each
/// termset. Produces exactly the same match set as the naive algorithm
/// (property-tested) while skipping the non-cover subsets entirely.
/// `max_matches` (0 = unlimited) truncates the enumeration early, keeping
/// adversarial many-keyword queries bounded in time and memory. `cancel`
/// (borrowed, may be null) stops the expansion loop early when it fires,
/// returning the matches accumulated so far.
std::vector<QueryMatch> GenerateMatches(const KeywordQuery& query,
                                        const std::vector<TupleSet>& tuple_sets,
                                        size_t max_matches = 0,
                                        const CancelToken* cancel = nullptr);

}  // namespace matcn

#endif  // MATCN_CORE_QMGEN_H_
