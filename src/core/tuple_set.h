#ifndef MATCN_CORE_TUPLE_SET_H_
#define MATCN_CORE_TUPLE_SET_H_

#include <string>
#include <vector>

#include "core/keyword_query.h"
#include "storage/schema.h"
#include "storage/tuple_id.h"

namespace matcn {

/// A non-free tuple-set R^K (Definition 4): the tuples of relation
/// `relation` that contain *exactly* the query keywords in `termset` (all
/// of them, and no other keyword of the query). Free tuple-sets R^{} are
/// represented implicitly by termset == 0 in graph nodes and never carry
/// tuple lists (they stand for the whole relation).
struct TupleSet {
  RelationId relation = 0;
  Termset termset = 0;
  std::vector<TupleId> tuples;  // sorted, unique, non-empty

  bool operator==(const TupleSet& o) const {
    return relation == o.relation && termset == o.termset &&
           tuples == o.tuples;
  }

  /// Deterministic ordering: by relation then termset.
  bool operator<(const TupleSet& o) const {
    if (relation != o.relation) return relation < o.relation;
    return termset < o.termset;
  }
};

/// Renders like "PER^{denzel,washington}".
std::string TupleSetName(const TupleSet& ts, const DatabaseSchema& schema,
                         const KeywordQuery& query);

}  // namespace matcn

#endif  // MATCN_CORE_TUPLE_SET_H_
