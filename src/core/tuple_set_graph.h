#ifndef MATCN_CORE_TUPLE_SET_GRAPH_H_
#define MATCN_CORE_TUPLE_SET_GRAPH_H_

#include <string>
#include <vector>

#include "core/tuple_set.h"
#include "graph/schema_graph.h"

namespace matcn {

/// A node of the tuple-set graph: a relation plus the termset of the
/// tuple-set it stands for (0 = free tuple-set R^{}).
struct TsNode {
  RelationId relation = 0;
  Termset termset = 0;
  /// Index into the R_Q vector for non-free nodes, -1 for free nodes.
  int tuple_set_index = -1;

  bool is_free() const { return termset == 0; }
};

/// The tuple-set graph G_TS (Definition 9): one free node per database
/// relation plus one node per non-empty non-free tuple-set in R_Q; nodes
/// are adjacent iff their base relations are adjacent in the schema graph.
/// Free nodes occupy ids [0, num_relations); non-free nodes follow in R_Q
/// order, so `FreeNode(r) == r`.
class TupleSetGraph {
 public:
  TupleSetGraph(const SchemaGraph* schema_graph,
                const std::vector<TupleSet>* tuple_sets);

  size_t num_nodes() const { return nodes_.size(); }
  const TsNode& node(int id) const { return nodes_[id]; }
  const std::vector<int>& Neighbors(int id) const { return adjacency_[id]; }

  int FreeNode(RelationId r) const { return static_cast<int>(r); }
  int NonFreeNode(int tuple_set_index) const {
    return static_cast<int>(schema_graph_->num_relations()) +
           tuple_set_index;
  }
  bool IsFree(int id) const { return nodes_[id].is_free(); }

  /// Stable node label used in canonical tree encodings: "rel#termset".
  std::string NodeLabel(int id) const;

  const SchemaGraph& schema_graph() const { return *schema_graph_; }
  const std::vector<TupleSet>& tuple_sets() const { return *tuple_sets_; }

 private:
  const SchemaGraph* schema_graph_;
  const std::vector<TupleSet>* tuple_sets_;
  std::vector<TsNode> nodes_;
  std::vector<std::vector<int>> adjacency_;
};

/// The match graph G_TS[M] (Definition 10): the subgraph of `g` induced by
/// the match's non-free nodes plus all free nodes. Exposes the same node
/// ids as `g` but filtered adjacency.
class MatchGraph {
 public:
  /// `match_nodes` are tuple-set-graph node ids of the match's non-free
  /// tuple-sets.
  MatchGraph(const TupleSetGraph* g, const std::vector<int>& match_nodes);

  /// Builds an empty overlay for `Reset` reuse (no node is allowed yet).
  explicit MatchGraph(const TupleSetGraph* g);

  /// Re-points the overlay at a different match of the same tuple-set
  /// graph, recycling the allowed/adjacency storage. A worker iterating
  /// the matches of one query resets a single MatchGraph instead of
  /// reallocating per match; the result is identical to a freshly
  /// constructed graph.
  void Reset(const std::vector<int>& match_nodes);

  /// Re-points the overlay at a *different* tuple-set graph (the next
  /// query), still recycling storage. The overlay is unusable until the
  /// following Reset; long-lived per-worker scratch uses this to survive
  /// across queries.
  void Rebind(const TupleSetGraph* g) { g_ = g; }

  bool Allowed(int id) const { return allowed_[id]; }
  /// Neighbors of `id` within the induced subgraph.
  const std::vector<int>& Neighbors(int id) const {
    return adjacency_[id];
  }
  const TupleSetGraph& base() const { return *g_; }
  const std::vector<int>& match_nodes() const { return match_nodes_; }

 private:
  const TupleSetGraph* g_;
  std::vector<int> match_nodes_;
  std::vector<bool> allowed_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace matcn

#endif  // MATCN_CORE_TUPLE_SET_GRAPH_H_
