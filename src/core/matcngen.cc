#include "core/matcngen.h"

#include <atomic>
#include <thread>

#include "common/timer.h"

namespace matcn {

MatCnGen::MatCnGen(const SchemaGraph* schema_graph, MatCnGenOptions options)
    : schema_graph_(schema_graph), options_(options) {}

GenerationResult MatCnGen::Generate(const KeywordQuery& query,
                                    const TermIndex& index) const {
  Stopwatch watch;
  std::vector<TupleSet> tuple_sets = TupleSetFinder::FindMem(index, query);
  return GenerateFromTupleSets(query, std::move(tuple_sets),
                               watch.ElapsedMillis());
}

Result<GenerationResult> MatCnGen::GenerateDisk(
    const KeywordQuery& query, const std::string& dir,
    const DatabaseSchema& schema) const {
  Stopwatch watch;
  Result<std::vector<TupleSet>> tuple_sets =
      TupleSetFinder::FindDisk(dir, schema, query);
  if (!tuple_sets.ok()) return tuple_sets.status();
  return GenerateFromTupleSets(query, std::move(tuple_sets).value(),
                               watch.ElapsedMillis());
}

GenerationResult MatCnGen::GenerateFromTupleSets(
    const KeywordQuery& query, std::vector<TupleSet> tuple_sets,
    double ts_millis) const {
  const CancelToken* cancel = options_.cancel;
  GenerationResult result;
  result.tuple_sets = std::move(tuple_sets);
  result.stats.ts_millis = ts_millis;
  result.stats.num_tuple_sets = result.tuple_sets.size();

  // Stage boundary TSFind -> QMGen.
  if (cancel != nullptr && cancel->Expired()) {
    result.stats.interrupted = true;
    return result;
  }

  Stopwatch watch;
  result.matches = options_.naive_qmgen
                       ? GenerateMatchesNaive(query, result.tuple_sets)
                       : GenerateMatches(query, result.tuple_sets,
                                         options_.max_matches, cancel);
  if (options_.max_matches > 0 &&
      result.matches.size() >= options_.max_matches) {
    result.matches.resize(options_.max_matches);
    result.stats.truncated = true;
  }
  result.stats.match_millis = watch.ElapsedMillis();
  result.stats.num_matches = result.matches.size();

  // Stage boundary QMGen -> MatchCN.
  if (cancel != nullptr && cancel->Expired()) {
    result.stats.interrupted = true;
    return result;
  }

  watch.Reset();
  TupleSetGraph ts_graph(schema_graph_, &result.tuple_sets);
  SingleCnOptions cn_options;
  cn_options.t_max = options_.t_max;
  cn_options.cancel = cancel;

  auto solve = [&](const QueryMatch& match) {
    std::vector<int> match_nodes;
    match_nodes.reserve(match.size());
    for (int ts_index : match) {
      match_nodes.push_back(ts_graph.NonFreeNode(ts_index));
    }
    MatchGraph match_graph(&ts_graph, match_nodes);
    return SingleCn(match_graph, cn_options);
  };

  if (options_.num_threads > 1 && result.matches.size() > 1) {
    // Each match is solved independently; slot results by match index so
    // the output equals the sequential run.
    std::vector<std::optional<CandidateNetwork>> slots(
        result.matches.size());
    std::atomic<size_t> next{0};
    auto worker = [&]() {
      while (true) {
        if (cancel != nullptr && cancel->Expired()) break;
        const size_t i = next.fetch_add(1);
        if (i >= result.matches.size()) break;
        slots[i] = solve(result.matches[i]);
      }
    };
    std::vector<std::thread> threads;
    const unsigned n = std::min<unsigned>(
        options_.num_threads, static_cast<unsigned>(result.matches.size()));
    threads.reserve(n);
    for (unsigned t = 0; t < n; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
    for (std::optional<CandidateNetwork>& cn : slots) {
      if (cn.has_value()) result.cns.push_back(std::move(*cn));
    }
  } else {
    for (const QueryMatch& match : result.matches) {
      if (cancel != nullptr && cancel->Expired()) break;
      std::optional<CandidateNetwork> cn = solve(match);
      if (cn.has_value()) result.cns.push_back(std::move(*cn));
    }
  }
  // Expired() is monotonic, so one check after the loops classifies every
  // early exit above (including SingleCn runs it aborted internally).
  if (cancel != nullptr && cancel->Expired()) {
    result.stats.interrupted = true;
  }
  result.stats.cn_millis = watch.ElapsedMillis();
  result.stats.num_cns = result.cns.size();
  return result;
}

}  // namespace matcn
