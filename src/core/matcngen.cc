#include "core/matcngen.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "common/timer.h"

namespace matcn {

namespace {

/// State shared between the calling thread and its MatchCN helpers. Held
/// in a shared_ptr captured by every helper task: a helper that only gets
/// scheduled after the query finished must still be able to read the
/// cursor, find it exhausted, and leave without touching anything else.
struct MatchCnShared {
  explicit MatchCnShared(size_t n) : total(n) {}

  const size_t total;
  std::atomic<size_t> next{0};
  std::atomic<size_t> finished{0};
  std::atomic<uint64_t> busy_micros{0};
  std::atomic<unsigned> workers{0};
  std::atomic<size_t> arena_peak{0};
  std::mutex mu;
  std::condition_variable cv;
};

/// Per-thread MatchCN scratch, kept across queries: the MatchGraph
/// overlay, the SingleCn arenas, and the match-node buffer all retain
/// their storage, so a pool worker's steady-state per-match loop performs
/// zero heap allocations (result materialization aside). The scratch is
/// rebound to the current query's tuple-set graph before first use.
struct WorkerScratch {
  std::optional<MatchGraph> match_graph;
  std::optional<SingleCnScratch> scratch;
  std::vector<int> match_nodes;
};

WorkerScratch& TlsWorkerScratch() {
  thread_local WorkerScratch ws;
  return ws;
}

// Binds the thread's scratch to this query's graph. The arena chunk size
// only applies on the thread's very first query (scratch construction);
// later queries reuse whatever arenas exist.
WorkerScratch& BindWorkerScratch(const TupleSetGraph* graph,
                                 size_t arena_chunk_bytes) {
  WorkerScratch& ws = TlsWorkerScratch();
  if (!ws.match_graph) {
    ws.match_graph.emplace(graph);
  } else {
    ws.match_graph->Rebind(graph);
  }
  if (!ws.scratch) ws.scratch.emplace(arena_chunk_bytes);
  return ws;
}

void MaxRelaxed(std::atomic<size_t>* target, size_t value) {
  size_t prev = target->load(std::memory_order_relaxed);
  while (prev < value &&
         !target->compare_exchange_weak(prev, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

MatCnGen::MatCnGen(const SchemaGraph* schema_graph, MatCnGenOptions options)
    : schema_graph_(schema_graph), options_(options) {}

GenerationResult MatCnGen::Generate(const KeywordQuery& query,
                                    const TermIndex& index) const {
  obs::Trace* trace = options_.trace.get();
  const uint32_t ts_span =
      trace ? trace->BeginSpan("tsfind", options_.trace_parent) : 0;
  Stopwatch watch;
  std::vector<TupleSet> tuple_sets = TupleSetFinder::FindMem(index, query);
  if (trace) trace->EndSpan(ts_span, tuple_sets.size());
  return GenerateFromTupleSets(query, std::move(tuple_sets),
                               watch.ElapsedMillis());
}

Result<GenerationResult> MatCnGen::GenerateDisk(
    const KeywordQuery& query, const std::string& dir,
    const DatabaseSchema& schema) const {
  obs::Trace* trace = options_.trace.get();
  const uint32_t ts_span =
      trace ? trace->BeginSpan("tsfind", options_.trace_parent) : 0;
  Stopwatch watch;
  Result<std::vector<TupleSet>> tuple_sets =
      TupleSetFinder::FindDisk(dir, schema, query);
  if (trace) {
    trace->EndSpan(ts_span,
                   tuple_sets.ok() ? tuple_sets.value().size() : 0);
  }
  if (!tuple_sets.ok()) return tuple_sets.status();
  return GenerateFromTupleSets(query, std::move(tuple_sets).value(),
                               watch.ElapsedMillis());
}

GenerationResult MatCnGen::GenerateFromTupleSets(
    const KeywordQuery& query, std::vector<TupleSet> tuple_sets,
    double ts_millis) const {
  const CancelToken* cancel = options_.cancel;
  obs::Trace* trace = options_.trace.get();
  GenerationResult result;
  result.tuple_sets = std::move(tuple_sets);
  result.stats.ts_millis = ts_millis;
  result.stats.num_tuple_sets = result.tuple_sets.size();

  // Stage boundary TSFind -> QMGen.
  if (cancel != nullptr && cancel->Expired()) {
    result.stats.interrupted = true;
    return result;
  }

  const uint32_t qm_span =
      trace ? trace->BeginSpan("qmgen", options_.trace_parent) : 0;
  Stopwatch watch;
  result.matches = options_.naive_qmgen
                       ? GenerateMatchesNaive(query, result.tuple_sets)
                       : GenerateMatches(query, result.tuple_sets,
                                         options_.max_matches, cancel);
  if (options_.max_matches > 0 &&
      result.matches.size() >= options_.max_matches) {
    result.matches.resize(options_.max_matches);
    result.stats.truncated = true;
  }
  result.stats.match_millis = watch.ElapsedMillis();
  result.stats.num_matches = result.matches.size();
  if (trace) trace->EndSpan(qm_span, result.matches.size());

  // Stage boundary QMGen -> MatchCN.
  if (cancel != nullptr && cancel->Expired()) {
    result.stats.interrupted = true;
    return result;
  }

  const uint32_t cn_span =
      trace ? trace->BeginSpan("matchcn", options_.trace_parent) : 0;
  watch.Reset();
  // Built once per query, then shared read-only by every worker; each
  // worker re-points its own MatchGraph overlay at one match at a time.
  TupleSetGraph ts_graph(schema_graph_, &result.tuple_sets);
  SingleCnOptions cn_options;
  cn_options.t_max = options_.t_max;
  cn_options.cancel = cancel;

  // Zero-alloc per match except the found CN's own vectors (the result
  // must own heap memory to outlive the scratch): match_nodes reuses its
  // buffer, Reset recycles the overlay, SingleCnInto runs on warm arenas.
  auto solve = [&ts_graph, cn_options](const QueryMatch& match,
                                       WorkerScratch* ws)
      -> std::optional<CandidateNetwork> {
    ws->match_nodes.clear();
    ws->match_nodes.reserve(match.size());
    for (int ts_index : match) {
      ws->match_nodes.push_back(ts_graph.NonFreeNode(ts_index));
    }
    ws->match_graph->Reset(ws->match_nodes);
    CandidateNetwork cn;
    if (!SingleCnInto(*ws->match_graph, cn_options, &*ws->scratch, &cn)) {
      return std::nullopt;
    }
    return cn;
  };

  const size_t total = result.matches.size();
  const unsigned threads =
      total > 1 ? std::min<unsigned>(std::max(1u, options_.num_threads),
                                     static_cast<unsigned>(total))
                : 1;
  if (threads > 1) {
    // Workers (the calling thread plus up to threads-1 helpers) claim
    // match indexes from a shared cursor and write the result into the
    // slot of that index, so the merge below reproduces the sequential
    // order exactly. The claim protocol is airtight against stragglers:
    // an in-range claim is ALWAYS followed by a `finished` increment
    // (cancellation only skips the solve), so once `finished == total`
    // every slot write has happened and any later helper draws an
    // out-of-range index and leaves after touching only `shared`.
    std::vector<std::optional<CandidateNetwork>> slots(total);
    auto shared = std::make_shared<MatchCnShared>(total);
    auto work = [shared, cancel, solve,
                 slots_data = slots.data(),
                 matches_data = result.matches.data(),
                 graph = &ts_graph,
                 chunk_bytes = options_.arena_chunk_kb * 1024,
                 // The trace rides along as a shared_ptr for the same
                 // straggler reason as `shared`: a helper scheduled after
                 // the query completed may still open/close its span.
                 trace_sp = options_.trace, cn_span]() {
      // Nothing beyond `shared` (and the owned trace_sp) may be
      // dereferenced before a claim lands in range — a late helper
      // outlives the caller's stack frame. The thread's persistent
      // scratch is bound to this query's graph only after the first
      // in-range claim, for the same reason.
      WorkerScratch* ws = nullptr;
      std::optional<Stopwatch> busy;
      uint32_t worker_span = 0;
      uint64_t solved = 0;
      while (true) {
        const size_t i = shared->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= shared->total) break;
        if (!busy) {
          busy.emplace();
          shared->workers.fetch_add(1, std::memory_order_relaxed);
          if (trace_sp) worker_span = trace_sp->BeginSpan("worker", cn_span);
          ws = &BindWorkerScratch(graph, chunk_bytes);
        }
        // Cancellation point: a fired token downgrades the claim to a
        // no-op so the accounting still completes.
        if (cancel == nullptr || !cancel->Expired()) {
          slots_data[i] = solve(matches_data[i], ws);
          ++solved;
        }
        if (shared->finished.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            shared->total) {
          std::lock_guard<std::mutex> lock(shared->mu);
          shared->cv.notify_all();
        }
      }
      if (busy) {
        // Floor at 1us: a worker that claimed work was busy for a nonzero
        // time, but a small match list can now finish below the clock
        // resolution, and a literal zero would read as "no work done" in
        // the efficiency ratio.
        shared->busy_micros.fetch_add(
            std::max<uint64_t>(
                1, static_cast<uint64_t>(busy->ElapsedMicros())),
            std::memory_order_relaxed);
        MaxRelaxed(&shared->arena_peak, ws->scratch->arena_bytes_peak());
        if (trace_sp) trace_sp->EndSpan(worker_span, solved);
      }
    };

    std::vector<std::thread> owned_threads;
    if (options_.executor != nullptr) {
      for (unsigned t = 1; t < threads; ++t) {
        // Refusals are fine: the caller absorbs the work below.
        if (!options_.executor->TrySpawn(work)) break;
      }
    } else {
      owned_threads.reserve(threads - 1);
      for (unsigned t = 1; t < threads; ++t) owned_threads.emplace_back(work);
    }
    work();  // The caller is always worker #0.
    {
      std::unique_lock<std::mutex> lock(shared->mu);
      shared->cv.wait(lock, [&shared] {
        return shared->finished.load(std::memory_order_acquire) ==
               shared->total;
      });
    }
    for (std::thread& t : owned_threads) t.join();

    for (std::optional<CandidateNetwork>& cn : slots) {
      if (cn.has_value()) result.cns.push_back(std::move(*cn));
    }
    result.stats.cn_workers =
        std::max(1u, shared->workers.load(std::memory_order_relaxed));
    result.stats.arena_bytes_peak =
        shared->arena_peak.load(std::memory_order_relaxed);
    const double wall_ms = watch.ElapsedMillis();
    const double busy_ms =
        static_cast<double>(
            shared->busy_micros.load(std::memory_order_relaxed)) /
        1000.0;
    result.stats.cn_parallel_efficiency =
        wall_ms > 0 ? std::clamp(busy_ms / (wall_ms * result.stats.cn_workers),
                                 0.0, 1.0)
                    : 1.0;
  } else {
    const uint32_t seq_span =
        trace ? trace->BeginSpan("singlecn", cn_span) : 0;
    WorkerScratch& ws =
        BindWorkerScratch(&ts_graph, options_.arena_chunk_kb * 1024);
    for (const QueryMatch& match : result.matches) {
      if (cancel != nullptr && cancel->Expired()) break;
      std::optional<CandidateNetwork> cn = solve(match, &ws);
      if (cn.has_value()) result.cns.push_back(std::move(*cn));
    }
    result.stats.arena_bytes_peak = ws.scratch->arena_bytes_peak();
    if (trace) trace->EndSpan(seq_span, result.cns.size());
  }
  // Expired() is monotonic, so one check after the loops classifies every
  // early exit above (including SingleCn runs it aborted internally).
  if (cancel != nullptr && cancel->Expired()) {
    result.stats.interrupted = true;
  }
  result.stats.cn_millis = watch.ElapsedMillis();
  result.stats.num_cns = result.cns.size();
  if (trace) trace->EndSpan(cn_span, result.cns.size());
  return result;
}

}  // namespace matcn
