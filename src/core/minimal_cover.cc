#include "core/minimal_cover.h"

#include <algorithm>

namespace matcn {

bool IsMinimalCover(const std::vector<Termset>& cover, Termset full) {
  Termset all = 0;
  for (Termset t : cover) {
    if (t == 0 || (t & ~full) != 0) return false;
    all |= t;
  }
  if (all != full) return false;
  // Minimality: every termset must contribute at least one keyword no
  // other termset provides.
  for (size_t i = 0; i < cover.size(); ++i) {
    Termset others = 0;
    for (size_t j = 0; j < cover.size(); ++j) {
      if (j != i) others |= cover[j];
    }
    if ((others | cover[i]) == others) return false;  // i is redundant
  }
  return true;
}

namespace {

// A cover has at most TermsetSize(full) <= kMaxKeywords members, so the
// search state fits in fixed stack arrays (one slack slot for the element
// being tested).
constexpr size_t kMaxCoverSize = KeywordQuery::kMaxKeywords + 1;

struct CoverSearch {
  const std::vector<Termset>* available = nullptr;
  // suffix_or[i] = OR of available[i..end]; the best any subtree rooted at
  // position i can still add.
  std::vector<Termset> suffix_or;
  Termset full = 0;
  size_t max_covers = 0;
  size_t max_size = 0;
  Termset current[kMaxCoverSize];
  size_t current_size = 0;
  CoverSearchStats stats;
  std::vector<std::vector<Termset>>* out = nullptr;

  // O(k) minimality check of current[0..current_size): element i is
  // redundant iff it adds nothing over the OR of the others, computed with
  // prefix/suffix accumulators instead of the O(k^2) pairwise union.
  // Entries are pre-filtered (non-empty subsets of full), so the
  // subset/emptiness half of IsMinimalCover is already guaranteed.
  bool CurrentIsMinimal() const {
    Termset suffix[kMaxCoverSize + 1];
    suffix[current_size] = 0;
    for (size_t i = current_size; i-- > 0;) {
      suffix[i] = suffix[i + 1] | current[i];
    }
    Termset prefix = 0;
    for (size_t i = 0; i < current_size; ++i) {
      const Termset others = prefix | suffix[i + 1];
      if ((current[i] & ~others) == 0) return false;  // i is redundant
      prefix |= current[i];
    }
    return true;
  }

  void Recurse(size_t start, Termset covered) {
    ++stats.probes;
    if (max_covers > 0 && out->size() >= max_covers) return;
    if (covered == full) {
      if (CurrentIsMinimal()) {
        out->emplace_back(current, current + current_size);
        ++stats.emitted;
      }
      return;
    }
    // Reachability bound: even taking every remaining termset cannot cover
    // the missing keywords — the whole subtree is dead.
    if ((covered | suffix_or[start]) != full) {
      ++stats.pruned_unreachable;
      return;
    }
    // A minimal cover of an n-element set has at most n members.
    if (current_size >= max_size) return;
    for (size_t i = start; i < available->size(); ++i) {
      const Termset t = (*available)[i];
      if ((t & ~covered) == 0) continue;  // adds nothing: cannot stay minimal
      current[current_size++] = t;
      Recurse(i + 1, covered | t);
      --current_size;
    }
  }
};

}  // namespace

std::vector<std::vector<Termset>> EnumerateMinimalCovers(
    std::vector<Termset> available, Termset full, size_t max_covers,
    CoverSearchStats* stats) {
  std::sort(available.begin(), available.end());
  available.erase(std::unique(available.begin(), available.end()),
                  available.end());
  // Drop termsets that are not subsets of the query or empty.
  available.erase(std::remove_if(available.begin(), available.end(),
                                 [full](Termset t) {
                                   return t == 0 || (t & ~full) != 0;
                                 }),
                  available.end());
  std::vector<std::vector<Termset>> out;
  CoverSearch search;
  search.available = &available;
  search.suffix_or.resize(available.size() + 1, 0);
  for (size_t i = available.size(); i-- > 0;) {
    search.suffix_or[i] = search.suffix_or[i + 1] | available[i];
  }
  search.full = full;
  search.max_covers = max_covers;
  search.max_size = static_cast<size_t>(TermsetSize(full));
  search.out = &out;
  search.Recurse(0, 0);
  std::sort(out.begin(), out.end());
  if (stats != nullptr) *stats = search.stats;
  return out;
}

}  // namespace matcn
