#include "core/minimal_cover.h"

#include <algorithm>

namespace matcn {

bool IsMinimalCover(const std::vector<Termset>& cover, Termset full) {
  Termset all = 0;
  for (Termset t : cover) {
    if (t == 0 || (t & ~full) != 0) return false;
    all |= t;
  }
  if (all != full) return false;
  // Minimality: every termset must contribute at least one keyword no
  // other termset provides.
  for (size_t i = 0; i < cover.size(); ++i) {
    Termset others = 0;
    for (size_t j = 0; j < cover.size(); ++j) {
      if (j != i) others |= cover[j];
    }
    if ((others | cover[i]) == others) return false;  // i is redundant
  }
  return true;
}

namespace {

void Recurse(const std::vector<Termset>& available, Termset full,
             size_t start, Termset covered, size_t max_covers,
             std::vector<Termset>* current,
             std::vector<std::vector<Termset>>* out) {
  if (max_covers > 0 && out->size() >= max_covers) return;
  if (covered == full) {
    if (IsMinimalCover(*current, full)) out->push_back(*current);
    return;
  }
  if (start >= available.size()) return;
  // A minimal cover of an n-element set has at most n members.
  if (current->size() >= static_cast<size_t>(TermsetSize(full))) return;
  for (size_t i = start; i < available.size(); ++i) {
    const Termset t = available[i];
    if ((t & ~covered) == 0) continue;  // adds nothing: cannot stay minimal
    current->push_back(t);
    Recurse(available, full, i + 1, covered | t, max_covers, current, out);
    current->pop_back();
  }
}

}  // namespace

std::vector<std::vector<Termset>> EnumerateMinimalCovers(
    std::vector<Termset> available, Termset full, size_t max_covers) {
  std::sort(available.begin(), available.end());
  available.erase(std::unique(available.begin(), available.end()),
                  available.end());
  // Drop termsets that are not subsets of the query or empty.
  available.erase(std::remove_if(available.begin(), available.end(),
                                 [full](Termset t) {
                                   return t == 0 || (t & ~full) != 0;
                                 }),
                  available.end());
  std::vector<std::vector<Termset>> out;
  std::vector<Termset> current;
  Recurse(available, full, 0, 0, max_covers, &current, &out);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace matcn
