#ifndef MATCN_CORE_CN_TO_SQL_H_
#define MATCN_CORE_CN_TO_SQL_H_

#include <string>

#include "core/candidate_network.h"
#include "core/keyword_query.h"
#include "storage/schema.h"

namespace matcn {

/// Renders a candidate network as the SQL join expression an R-KwS system
/// would hand to its RDBMS (the paper's systems emit such queries to
/// PostgreSQL). Each CN node becomes an aliased relation t0..tn, tree
/// edges become FK equi-join predicates, and every non-free node gets per
/// Definition 4 both the containment predicates for its termset keywords
/// and NOT-containment predicates for the query's remaining keywords.
/// Keyword containment is rendered with ILIKE over the relation's
/// searchable text attributes.
std::string CandidateNetworkToSql(const CandidateNetwork& cn,
                                  const DatabaseSchema& schema,
                                  const KeywordQuery& query);

}  // namespace matcn

#endif  // MATCN_CORE_CN_TO_SQL_H_
