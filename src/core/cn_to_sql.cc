#include "core/cn_to_sql.h"

#include <vector>

#include "graph/schema_graph.h"

namespace matcn {
namespace {

/// Renders `keyword` as a quoted ILIKE pattern literal: single quotes are
/// doubled (SQL string escaping) and the LIKE metacharacters % _ \ are
/// backslash-escaped, so a keyword is always matched verbatim and can
/// never terminate the literal. Pairs with an "ESCAPE '\'" clause.
std::string EscapedLikePattern(const std::string& keyword) {
  std::string out = "'%";
  for (const char c : keyword) {
    switch (c) {
      case '\'':
        out += "''";
        break;
      case '%':
      case '_':
      case '\\':
        out += '\\';
        [[fallthrough]];
      default:
        out += c;
    }
  }
  out += "%'";
  return out;
}

/// "(t2.name ILIKE '%denzel%' ESCAPE '\' OR ...)", or exactly "FALSE"
/// when the relation has no searchable text attribute.
std::string ContainmentPredicate(const RelationSchema& schema,
                                 const std::string& alias,
                                 const std::string& keyword) {
  std::string out;
  int terms = 0;
  const std::string pattern = EscapedLikePattern(keyword);
  for (const Attribute& attr : schema.attributes()) {
    if (attr.type != ValueType::kText || !attr.searchable) continue;
    if (terms > 0) out += " OR ";
    out += alias + "." + attr.name + " ILIKE " + pattern + " ESCAPE '\\'";
    ++terms;
  }
  if (terms == 0) return "FALSE";
  return terms == 1 ? out : "(" + out + ")";
}

}  // namespace

std::string CandidateNetworkToSql(const CandidateNetwork& cn,
                                  const DatabaseSchema& schema,
                                  const KeywordQuery& query) {
  std::string sql = "SELECT ";
  for (size_t i = 0; i < cn.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += "t" + std::to_string(i) + ".*";
  }
  sql += "\nFROM ";
  for (size_t i = 0; i < cn.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += schema.relation(cn.node(static_cast<int>(i)).relation).name() +
           " t" + std::to_string(i);
  }

  std::vector<std::string> predicates;
  // Join predicates from the schema's RICs.
  const SchemaGraph graph = SchemaGraph::Build(schema);
  for (size_t i = 1; i < cn.size(); ++i) {
    const int p = cn.parent(static_cast<int>(i));
    const CnNode& child = cn.node(static_cast<int>(i));
    const CnNode& parent = cn.node(p);
    const SchemaEdge* edge = graph.Edge(child.relation, parent.relation);
    if (edge == nullptr) continue;  // malformed CN; emit joins we know
    const std::string holder_alias =
        "t" + std::to_string(edge->holder == child.relation ? i
                                                            : static_cast<size_t>(p));
    const std::string referenced_alias =
        "t" + std::to_string(edge->holder == child.relation ? static_cast<size_t>(p)
                                                            : i);
    predicates.push_back(
        holder_alias + "." +
        schema.relation(edge->holder).attribute(edge->holder_attribute).name +
        " = " + referenced_alias + "." +
        schema.relation(edge->referenced)
            .attribute(edge->referenced_attribute)
            .name);
  }

  // Keyword containment / exclusion predicates (Definition 4 semantics).
  for (size_t i = 0; i < cn.size(); ++i) {
    const CnNode& node = cn.node(static_cast<int>(i));
    if (node.is_free()) continue;
    const RelationSchema& rs = schema.relation(node.relation);
    const std::string alias = "t" + std::to_string(i);
    for (size_t k = 0; k < query.size(); ++k) {
      const bool required = (node.termset >> k) & 1;
      std::string pred = ContainmentPredicate(rs, alias, query.keyword(k));
      predicates.push_back(required ? pred : "NOT " + pred);
    }
  }

  // A single free node with an empty termset has no predicates at all;
  // emitting "WHERE ;" would be invalid SQL.
  if (!predicates.empty()) {
    sql += "\nWHERE ";
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (i > 0) sql += "\n  AND ";
      sql += predicates[i];
    }
  }
  sql += ";";
  return sql;
}

}  // namespace matcn
