#include "core/cn_to_sql.h"

#include <vector>

#include "graph/schema_graph.h"

namespace matcn {
namespace {

/// "(t2.name ILIKE '%denzel%' OR t2.bio ILIKE '%denzel%')", or exactly
/// "FALSE" when the relation has no searchable text attribute.
std::string ContainmentPredicate(const RelationSchema& schema,
                                 const std::string& alias,
                                 const std::string& keyword) {
  std::string out;
  int terms = 0;
  for (const Attribute& attr : schema.attributes()) {
    if (attr.type != ValueType::kText || !attr.searchable) continue;
    if (terms > 0) out += " OR ";
    out += alias + "." + attr.name + " ILIKE '%" + keyword + "%'";
    ++terms;
  }
  if (terms == 0) return "FALSE";
  return terms == 1 ? out : "(" + out + ")";
}

}  // namespace

std::string CandidateNetworkToSql(const CandidateNetwork& cn,
                                  const DatabaseSchema& schema,
                                  const KeywordQuery& query) {
  std::string sql = "SELECT ";
  for (size_t i = 0; i < cn.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += "t" + std::to_string(i) + ".*";
  }
  sql += "\nFROM ";
  for (size_t i = 0; i < cn.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += schema.relation(cn.node(static_cast<int>(i)).relation).name() +
           " t" + std::to_string(i);
  }

  std::vector<std::string> predicates;
  // Join predicates from the schema's RICs.
  const SchemaGraph graph = SchemaGraph::Build(schema);
  for (size_t i = 1; i < cn.size(); ++i) {
    const int p = cn.parent(static_cast<int>(i));
    const CnNode& child = cn.node(static_cast<int>(i));
    const CnNode& parent = cn.node(p);
    const SchemaEdge* edge = graph.Edge(child.relation, parent.relation);
    if (edge == nullptr) continue;  // malformed CN; emit joins we know
    const std::string holder_alias =
        "t" + std::to_string(edge->holder == child.relation ? i
                                                            : static_cast<size_t>(p));
    const std::string referenced_alias =
        "t" + std::to_string(edge->holder == child.relation ? static_cast<size_t>(p)
                                                            : i);
    predicates.push_back(
        holder_alias + "." +
        schema.relation(edge->holder).attribute(edge->holder_attribute).name +
        " = " + referenced_alias + "." +
        schema.relation(edge->referenced)
            .attribute(edge->referenced_attribute)
            .name);
  }

  // Keyword containment / exclusion predicates (Definition 4 semantics).
  for (size_t i = 0; i < cn.size(); ++i) {
    const CnNode& node = cn.node(static_cast<int>(i));
    if (node.is_free()) continue;
    const RelationSchema& rs = schema.relation(node.relation);
    const std::string alias = "t" + std::to_string(i);
    for (size_t k = 0; k < query.size(); ++k) {
      const bool required = (node.termset >> k) & 1;
      std::string pred = ContainmentPredicate(rs, alias, query.keyword(k));
      predicates.push_back(required ? pred : "NOT " + pred);
    }
  }

  sql += "\nWHERE ";
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i > 0) sql += "\n  AND ";
    sql += predicates[i];
  }
  sql += ";";
  return sql;
}

}  // namespace matcn
