#ifndef MATCN_CORE_MATCNGEN_H_
#define MATCN_CORE_MATCNGEN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/executor.h"
#include "common/status.h"
#include "obs/trace.h"
#include "core/candidate_network.h"
#include "core/keyword_query.h"
#include "core/qmgen.h"
#include "core/single_cn.h"
#include "core/tsfind.h"
#include "core/tuple_set_graph.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"

namespace matcn {

struct MatCnGenOptions {
  /// Maximum CN size in tuple-sets (paper: T_max = 10).
  int t_max = 10;
  /// Use paper Algorithm 1 verbatim for match generation instead of the
  /// equivalent cover-product optimization.
  bool naive_qmgen = false;
  /// Upper bound on generated query matches (resource guard for the
  /// adversarial synthetic workloads; 0 disables the limit).
  size_t max_matches = 0;
  /// Concurrent workers for the per-match CN construction step, the
  /// calling thread included. Matches are independent (each SingleCN run
  /// only reads the shared tuple-set graph), so workers claim match
  /// indexes from a shared cursor and slot results by index; the merged
  /// output is element- and order-identical to the sequential run.
  /// 0 or 1 = sequential.
  unsigned num_threads = 1;
  /// Where helper workers come from. When set, up to `num_threads - 1`
  /// helper tasks are offered to this executor (the serving layer hands
  /// down its own ThreadPool, so intra-query parallelism shares the one
  /// pool instead of spawning threads per query); refused or late helpers
  /// are harmless because the calling thread processes the whole match
  /// list itself if need be. When null, dedicated std::threads are
  /// spawned (standalone library use, benches). Borrowed, may be null;
  /// must outlive the Generate call.
  TaskExecutor* executor = nullptr;
  /// Cooperative cancellation (deadline and/or explicit cancel), checked
  /// at stage boundaries and inside the per-match CN loop. When it fires
  /// mid-run the pipeline stops early and marks `stats.interrupted`; the
  /// partial result contains whatever was completed. Borrowed, may be
  /// null; must outlive the Generate call.
  const CancelToken* cancel = nullptr;
  /// Per-request trace; null = untraced (the span calls compile to a
  /// null check and nothing else). Shared, not borrowed, on purpose:
  /// parallel-MatchCN helper tasks capture it by value because a late
  /// pool helper can outlive the caller's stack frame — the same
  /// straggler contract MatchCnShared lives under.
  std::shared_ptr<obs::Trace> trace;
  /// Parent span id for this generation's stage spans (the service's
  /// "request" root); 0 = top level.
  uint32_t trace_parent = 0;
  /// Initial chunk size (KiB) of each worker's SingleCn bump arenas
  /// (later chunks double, capped at 4 MiB). Worker scratch is
  /// thread-local and constructed on a thread's first query, so the first
  /// query's value wins for that thread; subsequent values are ignored.
  size_t arena_chunk_kb = 64;
};

/// Timing and volume statistics for one generation run; the Figure 10
/// bench reports ts_millis (tuple-set finding) separately from the rest.
struct GenerationStats {
  double ts_millis = 0;     // TSFind / TSFind_Mem
  double match_millis = 0;  // QMGen
  double cn_millis = 0;     // MatchCN
  size_t num_tuple_sets = 0;
  size_t num_matches = 0;
  size_t num_cns = 0;
  /// Workers that actually solved at least one match (1 on the
  /// sequential path; helpers that never got scheduled don't count).
  unsigned cn_workers = 1;
  /// Parallel-speedup quality of the MatchCN stage: aggregate worker busy
  /// time divided by (wall time x cn_workers), in (0, 1]. 1.0 means the
  /// partition kept every participating worker busy for the whole stage
  /// (and is also reported by the sequential path); values near 1/n mean
  /// the stage was effectively serial despite n workers.
  double cn_parallel_efficiency = 1.0;
  bool truncated = false;    // max_matches kicked in
  bool interrupted = false;  // cancel/deadline fired mid-run; partial result
  /// Largest per-worker SingleCn arena high-water (bytes) among the
  /// workers that served this query. Thread-local scratch survives across
  /// queries, so this is a lifetime high-water, not a per-query delta.
  size_t arena_bytes_peak = 0;
};

struct GenerationResult {
  std::vector<TupleSet> tuple_sets;     // R_Q
  std::vector<QueryMatch> matches;      // M_Q
  std::vector<CandidateNetwork> cns;    // one CN per match that admits one
  GenerationStats stats;
};

/// The complete MatCNGen pipeline (paper Figure 2): tuple-set finding,
/// query-match generation, and per-match CN construction. One instance is
/// reusable across queries; it only borrows the schema graph.
class MatCnGen {
 public:
  explicit MatCnGen(const SchemaGraph* schema_graph,
                    MatCnGenOptions options = {});

  /// Memory-based variant: tuple-sets from the prebuilt Term Index.
  GenerationResult Generate(const KeywordQuery& query,
                            const TermIndex& index) const;

  /// Disk-based variant: tuple-sets from sequential relation-file scans
  /// under `dir`.
  Result<GenerationResult> GenerateDisk(const KeywordQuery& query,
                                        const std::string& dir,
                                        const DatabaseSchema& schema) const;

  /// Steps 2-3 only, given precomputed tuple-sets (also the hook tests use
  /// to drive the pipeline with hand-built R_Q).
  GenerationResult GenerateFromTupleSets(const KeywordQuery& query,
                                         std::vector<TupleSet> tuple_sets,
                                         double ts_millis) const;

  const MatCnGenOptions& options() const { return options_; }

 private:
  const SchemaGraph* schema_graph_;
  MatCnGenOptions options_;
};

}  // namespace matcn

#endif  // MATCN_CORE_MATCNGEN_H_
