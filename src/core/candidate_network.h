#ifndef MATCN_CORE_CANDIDATE_NETWORK_H_
#define MATCN_CORE_CANDIDATE_NETWORK_H_

#include <string>
#include <vector>

#include "core/keyword_query.h"
#include "core/tuple_set.h"
#include "graph/schema_graph.h"

namespace matcn {

/// One node of a candidate network: a tuple-set reference. Free tuple-sets
/// have termset == 0 and tuple_set_index == -1; non-free nodes keep the
/// index of their TupleSet in R_Q so evaluation can reach the tuple lists.
struct CnNode {
  RelationId relation = 0;
  Termset termset = 0;
  int tuple_set_index = -1;

  bool is_free() const { return termset == 0; }
  bool operator==(const CnNode& o) const {
    return relation == o.relation && termset == o.termset;
  }
};

/// A joining network of tuple-sets (Definition 5) stored as a rooted tree:
/// node 0 is the root and `parent(i) < i` for i > 0. Used both for the
/// partial JNTs that the generation algorithms expand and for the final
/// candidate networks (Definition 6).
class CandidateNetwork {
 public:
  CandidateNetwork() = default;

  static CandidateNetwork SingleNode(CnNode node);

  /// Returns a copy of this tree with `node` attached under `attach_to`.
  CandidateNetwork Extend(int attach_to, CnNode node) const;

  /// Overwrites this tree with `n` nodes and their parent links, reusing
  /// the existing capacity — how SingleCnInto materializes a result out of
  /// arena memory into a caller-owned CN without fresh allocations.
  void Assign(const CnNode* nodes, const int* parents, size_t n) {
    nodes_.assign(nodes, nodes + n);
    parents_.assign(parents, parents + n);
  }

  size_t size() const { return nodes_.size(); }
  const CnNode& node(int i) const { return nodes_[i]; }
  const std::vector<CnNode>& nodes() const { return nodes_; }
  int parent(int i) const { return parents_[i]; }

  int num_non_free() const;

  /// Union of the non-free nodes' termsets.
  Termset CoveredTermset() const;

  /// Tree adjacency lists (index-aligned with nodes()).
  std::vector<std::vector<int>> Adjacency() const;

  /// Node indexes with degree <= 1.
  std::vector<int> Leaves() const;

  /// AHU canonical encoding with labels "relation#termset"; two CNs are
  /// isomorphic as labeled trees iff encodings are equal. This implements
  /// the duplicate detection of SingleCN (J' ∉ F) and of CNGen.
  std::string CanonicalForm() const;

  /// Soundness per Definition 7: the tree is unsound iff some node S has
  /// two neighbours over the same base relation R while S holds the
  /// foreign key referencing R — S's single FK value cannot join two
  /// distinct R tuples, so every produced JNT would repeat a tuple.
  bool IsSound(const SchemaGraph& schema_graph) const;

  /// Incremental variant: checks only the constraint around `center`
  /// (sufficient after attaching one new leaf under `center`).
  bool IsSoundAround(const SchemaGraph& schema_graph, int center) const;

  /// Renders like "MOV^{gangster} ⋈ CAST^{} ⋈ PER^{denzel,washington}"
  /// via a pre-order walk.
  std::string ToString(const DatabaseSchema& schema,
                       const KeywordQuery& query) const;

  bool operator==(const CandidateNetwork& o) const {
    return nodes_ == o.nodes_ && parents_ == o.parents_;
  }

 private:
  std::vector<CnNode> nodes_;
  std::vector<int> parents_;
};

}  // namespace matcn

#endif  // MATCN_CORE_CANDIDATE_NETWORK_H_
