#include "core/tuple_set.h"

namespace matcn {

std::string TupleSetName(const TupleSet& ts, const DatabaseSchema& schema,
                         const KeywordQuery& query) {
  return schema.relation(ts.relation).name() + "^" +
         query.TermsetToString(ts.termset);
}

}  // namespace matcn
