#include "core/tuple_set_graph.h"

namespace matcn {

TupleSetGraph::TupleSetGraph(const SchemaGraph* schema_graph,
                             const std::vector<TupleSet>* tuple_sets)
    : schema_graph_(schema_graph), tuple_sets_(tuple_sets) {
  const size_t num_relations = schema_graph_->num_relations();
  nodes_.reserve(num_relations + tuple_sets_->size());
  for (RelationId r = 0; r < num_relations; ++r) {
    nodes_.push_back(TsNode{r, 0, -1});
  }
  for (size_t i = 0; i < tuple_sets_->size(); ++i) {
    const TupleSet& ts = (*tuple_sets_)[i];
    nodes_.push_back(TsNode{ts.relation, ts.termset, static_cast<int>(i)});
  }
  adjacency_.resize(nodes_.size());
  for (size_t u = 0; u < nodes_.size(); ++u) {
    for (size_t v = 0; v < nodes_.size(); ++v) {
      if (u == v) continue;
      if (schema_graph_->HasEdge(nodes_[u].relation, nodes_[v].relation)) {
        adjacency_[u].push_back(static_cast<int>(v));
      }
    }
  }
}

std::string TupleSetGraph::NodeLabel(int id) const {
  const TsNode& n = nodes_[id];
  return std::to_string(n.relation) + "#" + std::to_string(n.termset);
}

MatchGraph::MatchGraph(const TupleSetGraph* g,
                       const std::vector<int>& match_nodes)
    : g_(g) {
  Reset(match_nodes);
}

MatchGraph::MatchGraph(const TupleSetGraph* g) : g_(g) {
  allowed_.assign(g_->num_nodes(), false);
  adjacency_.resize(g_->num_nodes());
}

void MatchGraph::Reset(const std::vector<int>& match_nodes) {
  match_nodes_ = match_nodes;
  allowed_.assign(g_->num_nodes(), false);
  for (size_t id = 0; id < g_->num_nodes(); ++id) {
    if (g_->IsFree(static_cast<int>(id))) allowed_[id] = true;
  }
  for (int id : match_nodes_) allowed_[id] = true;
  // Grow-only: shrinking would destroy inner vectors (and the capacity a
  // warmed worker depends on) when Rebind moves to a smaller graph.
  if (adjacency_.size() < g_->num_nodes()) {
    adjacency_.resize(g_->num_nodes());
  }
  for (size_t u = 0; u < g_->num_nodes(); ++u) {
    adjacency_[u].clear();
    if (!allowed_[u]) continue;
    for (int v : g_->Neighbors(static_cast<int>(u))) {
      if (allowed_[v]) adjacency_[u].push_back(v);
    }
  }
}

}  // namespace matcn
