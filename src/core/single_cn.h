#ifndef MATCN_CORE_SINGLE_CN_H_
#define MATCN_CORE_SINGLE_CN_H_

#include <memory>
#include <optional>

#include "common/deadline.h"
#include "core/candidate_network.h"
#include "core/tuple_set_graph.h"

namespace matcn {

struct SingleCnOptions {
  /// Maximum number of tuple-sets per CN (paper uses T_max = 10).
  int t_max = 10;
  /// Safety valve on dequeued partial trees; SingleCN on a match graph
  /// terminates long before this in practice.
  size_t max_expansions = 1'000'000;
  /// Cooperative cancellation, polled every few hundred expansions; the
  /// search gives up (returns nullopt) once it fires. Borrowed, may be
  /// null.
  const CancelToken* cancel = nullptr;
};

/// Reusable per-worker scratch arena for SingleCn: the BFS frontier and
/// the canonical-form dedup set survive across calls with their capacity
/// (vector storage, hash buckets) intact, so a worker solving hundreds of
/// matches of one query allocates the big blocks once instead of per
/// match. Not thread-safe — one scratch per worker. The definition is
/// private to single_cn.cc.
class SingleCnScratch {
 public:
  SingleCnScratch();
  ~SingleCnScratch();

  SingleCnScratch(const SingleCnScratch&) = delete;
  SingleCnScratch& operator=(const SingleCnScratch&) = delete;

  struct Impl;
  Impl* impl() { return impl_.get(); }

 private:
  std::unique_ptr<Impl> impl_;
};

/// SingleCN (paper Algorithm 3): breadth-first search over the match graph
/// for the shortest *sound* joining network of tuple-sets that contains
/// every node of the match. Partial trees are deduplicated by canonical
/// form (the J' ∉ F test), non-free nodes are used at most once, and free
/// nodes may repeat as distinct tree instances. Returns nullopt when no CN
/// of size <= t_max exists.
///
/// Because the search is breadth-first over tree size, the first tree
/// containing the match cannot have a free leaf (a strictly smaller tree
/// containing the match would have been found first), so the returned tree
/// is a valid candidate network per Definition 6.
///
/// `scratch` (optional, borrowed) recycles the search's heap blocks across
/// calls; passing one never changes the result.
std::optional<CandidateNetwork> SingleCn(const MatchGraph& match_graph,
                                         const SingleCnOptions& options = {},
                                         SingleCnScratch* scratch = nullptr);

}  // namespace matcn

#endif  // MATCN_CORE_SINGLE_CN_H_
