#ifndef MATCN_CORE_SINGLE_CN_H_
#define MATCN_CORE_SINGLE_CN_H_

#include <cstddef>
#include <memory>
#include <optional>

#include "common/deadline.h"
#include "core/candidate_network.h"
#include "core/tuple_set_graph.h"

namespace matcn {

struct SingleCnOptions {
  /// Maximum number of tuple-sets per CN (paper uses T_max = 10).
  int t_max = 10;
  /// Safety valve on dequeued partial trees; SingleCN on a match graph
  /// terminates long before this in practice.
  size_t max_expansions = 1'000'000;
  /// Cooperative cancellation, polled every few hundred expansions; the
  /// search gives up (returns nullopt) once it fires. Borrowed, may be
  /// null.
  const CancelToken* cancel = nullptr;
};

/// Reusable per-worker scratch for SingleCn, backed by bump arenas
/// (common/arena.h): the BFS frontier, the partial trees, the canonical
/// encodings, and the dedup set all allocate from arena chunks that are
/// *retained* across calls, so a worker solving hundreds of matches —
/// across any number of queries — touches the heap only until its arenas
/// reach their high-water mark, and never again after that. Not
/// thread-safe — one scratch per worker. The definition is private to
/// single_cn.cc.
class SingleCnScratch {
 public:
  /// `arena_chunk_bytes` sizes the arenas' first chunk (later chunks
  /// double, capped). See MatCnGenOptions::arena_chunk_kb.
  explicit SingleCnScratch(size_t arena_chunk_bytes = 64 * 1024);
  ~SingleCnScratch();

  SingleCnScratch(const SingleCnScratch&) = delete;
  SingleCnScratch& operator=(const SingleCnScratch&) = delete;

  /// Lifetime high-water of arena bytes in use (both arenas summed);
  /// survives the per-call resets. Feeds GenerationStats/ServiceStats.
  size_t arena_bytes_peak() const;

  struct Impl;
  Impl* impl() { return impl_.get(); }

 private:
  std::unique_ptr<Impl> impl_;
};

/// SingleCN (paper Algorithm 3): breadth-first search over the match graph
/// for the shortest *sound* joining network of tuple-sets that contains
/// every node of the match. Partial trees are deduplicated by canonical
/// form (the J' ∉ F test), non-free nodes are used at most once, and free
/// nodes may repeat as distinct tree instances. Returns false when no CN
/// of size <= t_max exists (or the search was cancelled).
///
/// Because the search is breadth-first over tree size, the first tree
/// containing the match cannot have a free leaf (a strictly smaller tree
/// containing the match would have been found first), so the returned tree
/// is a valid candidate network per Definition 6.
///
/// On success the result is written into `*out` via Assign, reusing its
/// capacity — with a warm `scratch` and a reused `out`, the whole call is
/// heap-allocation-free. `scratch` and `out` must be non-null; the scratch
/// is reset on entry and its contents do not survive the call.
bool SingleCnInto(const MatchGraph& match_graph,
                  const SingleCnOptions& options, SingleCnScratch* scratch,
                  CandidateNetwork* out);

/// Convenience wrapper over SingleCnInto returning a fresh CN (nullopt if
/// none exists). `scratch` (optional, borrowed) recycles the search's
/// memory across calls; passing one never changes the result.
std::optional<CandidateNetwork> SingleCn(const MatchGraph& match_graph,
                                         const SingleCnOptions& options = {},
                                         SingleCnScratch* scratch = nullptr);

}  // namespace matcn

#endif  // MATCN_CORE_SINGLE_CN_H_
