#ifndef MATCN_CORE_SINGLE_CN_H_
#define MATCN_CORE_SINGLE_CN_H_

#include <optional>

#include "common/deadline.h"
#include "core/candidate_network.h"
#include "core/tuple_set_graph.h"

namespace matcn {

struct SingleCnOptions {
  /// Maximum number of tuple-sets per CN (paper uses T_max = 10).
  int t_max = 10;
  /// Safety valve on dequeued partial trees; SingleCN on a match graph
  /// terminates long before this in practice.
  size_t max_expansions = 1'000'000;
  /// Cooperative cancellation, polled every few hundred expansions; the
  /// search gives up (returns nullopt) once it fires. Borrowed, may be
  /// null.
  const CancelToken* cancel = nullptr;
};

/// SingleCN (paper Algorithm 3): breadth-first search over the match graph
/// for the shortest *sound* joining network of tuple-sets that contains
/// every node of the match. Partial trees are deduplicated by canonical
/// form (the J' ∉ F test), non-free nodes are used at most once, and free
/// nodes may repeat as distinct tree instances. Returns nullopt when no CN
/// of size <= t_max exists.
///
/// Because the search is breadth-first over tree size, the first tree
/// containing the match cannot have a free leaf (a strictly smaller tree
/// containing the match would have been found first), so the returned tree
/// is a valid candidate network per Definition 6.
std::optional<CandidateNetwork> SingleCn(const MatchGraph& match_graph,
                                         const SingleCnOptions& options = {});

}  // namespace matcn

#endif  // MATCN_CORE_SINGLE_CN_H_
