#include "core/single_cn.h"

#include <unordered_set>
#include <vector>

namespace matcn {

/// A partial joining network of tuple-sets during the BFS. Tree node i
/// instantiates tuple-set-graph node `ts_nodes[i]`; free graph nodes may
/// be instantiated several times, non-free ones at most once.
struct PartialTree {
  CandidateNetwork tree;
  std::vector<int> ts_nodes;
  uint64_t match_used = 0;  // bit i <=> match_nodes[i] is in the tree
};

/// The BFS frontier is a vector plus a head cursor instead of a deque:
/// the vector's storage block (and the dedup set's bucket array) survive
/// a Clear(), which is what makes reusing one scratch across the hundreds
/// of matches of a query worthwhile.
struct SingleCnScratch::Impl {
  std::vector<PartialTree> queue;
  size_t head = 0;
  std::unordered_set<std::string> seen;

  void Clear() {
    queue.clear();
    head = 0;
    seen.clear();
  }
};

SingleCnScratch::SingleCnScratch() : impl_(std::make_unique<Impl>()) {}
SingleCnScratch::~SingleCnScratch() = default;

std::optional<CandidateNetwork> SingleCn(const MatchGraph& match_graph,
                                         const SingleCnOptions& options,
                                         SingleCnScratch* scratch) {
  const TupleSetGraph& g = match_graph.base();
  const std::vector<int>& match_nodes = match_graph.match_nodes();
  if (match_nodes.empty() || match_nodes.size() > 64) return std::nullopt;
  // A CN contains every match node, so a match larger than t_max can never
  // admit one — without this check the BFS would exhaust the whole match
  // graph before concluding exactly that.
  if (match_nodes.size() > static_cast<size_t>(options.t_max)) {
    return std::nullopt;
  }
  const uint64_t full_match =
      match_nodes.size() == 64 ? ~uint64_t{0}
                               : (uint64_t{1} << match_nodes.size()) - 1;

  auto match_bit = [&](int ts_node) -> uint64_t {
    for (size_t i = 0; i < match_nodes.size(); ++i) {
      if (match_nodes[i] == ts_node) return uint64_t{1} << i;
    }
    return 0;
  };

  auto make_cn_node = [&](int ts_node) {
    const TsNode& n = g.node(ts_node);
    return CnNode{n.relation, n.termset, n.tuple_set_index};
  };

  SingleCnScratch local_scratch;
  SingleCnScratch::Impl& s =
      scratch != nullptr ? *scratch->impl() : *local_scratch.impl();
  s.Clear();

  // Line 2 of Algorithm 3: start from the first tuple-set of the match.
  PartialTree initial;
  initial.tree = CandidateNetwork::SingleNode(make_cn_node(match_nodes[0]));
  initial.ts_nodes = {match_nodes[0]};
  initial.match_used = match_bit(match_nodes[0]);
  if (initial.match_used == full_match) return initial.tree;

  s.seen.insert(initial.tree.CanonicalForm());
  s.queue.push_back(std::move(initial));

  size_t expansions = 0;
  while (s.head < s.queue.size()) {
    if (++expansions > options.max_expansions) break;
    // Poll the cancel token coarsely; a clock read per dequeue would cost
    // more than the expansion itself on small match graphs.
    if (options.cancel != nullptr && (expansions & 0xFF) == 0 &&
        options.cancel->Expired()) {
      return std::nullopt;
    }
    // Popping advances the cursor; the element stays in place so the
    // vector never shifts. `current` must be re-fetched after push_back
    // below would invalidate references, so copy the fields we keep.
    PartialTree current = std::move(s.queue[s.head]);
    ++s.head;
    if (current.tree.size() >= static_cast<size_t>(options.t_max)) continue;

    for (size_t pos = 0; pos < current.ts_nodes.size(); ++pos) {
      for (int nbr : match_graph.Neighbors(current.ts_nodes[pos])) {
        // Line 8: a non-free tuple-set may appear at most once.
        if (!g.IsFree(nbr)) {
          bool used = false;
          for (int existing : current.ts_nodes) {
            if (existing == nbr) {
              used = true;
              break;
            }
          }
          if (used) continue;
        }
        PartialTree next;
        next.tree =
            current.tree.Extend(static_cast<int>(pos), make_cn_node(nbr));
        // Soundness only needs re-checking around the attachment point.
        if (!next.tree.IsSoundAround(g.schema_graph(),
                                     static_cast<int>(pos))) {
          continue;
        }
        std::string canon = next.tree.CanonicalForm();
        if (!s.seen.insert(std::move(canon)).second) continue;
        next.ts_nodes = current.ts_nodes;
        next.ts_nodes.push_back(nbr);
        next.match_used = current.match_used | match_bit(nbr);
        if (next.match_used == full_match) {
          return next.tree;  // Line 12: shortest CN containing the match.
        }
        // Completion bound: each missing match node costs at least one
        // more tree node; prune branches that cannot fit within t_max.
        const int missing =
            __builtin_popcountll(full_match & ~next.match_used);
        if (next.tree.size() + static_cast<size_t>(missing) >
            static_cast<size_t>(options.t_max)) {
          continue;
        }
        s.queue.push_back(std::move(next));
      }
    }
  }
  return std::nullopt;
}

}  // namespace matcn
