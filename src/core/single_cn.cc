#include "core/single_cn.h"

#include <memory_resource>
#include <unordered_set>
#include <vector>

#include "common/arena.h"
#include "graph/tree_canonical.h"

namespace matcn {
namespace {

/// A partial joining network of tuple-sets during the BFS, stored as flat
/// (nodes, parents) arrays like CandidateNetwork but in arena memory. Tree
/// node i instantiates tuple-set-graph node `ts_nodes[i]`; free graph
/// nodes may be instantiated several times, non-free ones at most once.
/// Allocator-aware so std::pmr::vector<PTree> propagates the arena into
/// elements it constructs or relocates.
struct PTree {
  using allocator_type = std::pmr::polymorphic_allocator<std::byte>;

  std::pmr::vector<CnNode> nodes;
  std::pmr::vector<int> parents;
  std::pmr::vector<int> ts_nodes;
  uint64_t match_used = 0;  // bit i <=> match_nodes[i] is in the tree

  explicit PTree(allocator_type alloc)
      : nodes(alloc), parents(alloc), ts_nodes(alloc) {}
  PTree(PTree&&) = default;
  PTree(PTree&& o, allocator_type alloc)
      : nodes(std::move(o.nodes), alloc),
        parents(std::move(o.parents), alloc),
        ts_nodes(std::move(o.ts_nodes), alloc),
        match_used(o.match_used) {}
  PTree& operator=(PTree&&) = default;
};

// std::to_string for unsigned values without touching the heap.
void AppendDecimal(std::pmr::string* out, uint64_t v) {
  char buf[20];
  size_t n = 0;
  do {
    buf[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) out->push_back(buf[--n]);
}

// CandidateNetwork::CanonicalForm over the flat arrays, every byte from
// `mr` (the expansion-scoped arena). Labels are "relation#termset",
// matching NodeLabel / CanonicalForm exactly so dedup behaves identically.
std::pmr::string CanonicalFormPmr(const std::pmr::vector<CnNode>& nodes,
                                  const std::pmr::vector<int>& parents,
                                  std::pmr::memory_resource* mr) {
  const size_t n = nodes.size();
  std::pmr::vector<std::pmr::vector<int>> adj(n, mr);
  for (size_t i = 1; i < n; ++i) {
    adj[i].push_back(parents[i]);
    adj[parents[i]].push_back(static_cast<int>(i));
  }
  std::pmr::vector<std::pmr::string> labels(mr);
  labels.reserve(n);
  for (const CnNode& node : nodes) {
    labels.emplace_back();
    AppendDecimal(&labels.back(), node.relation);
    labels.back().push_back('#');
    AppendDecimal(&labels.back(), node.termset);
  }
  return CanonicalTreeEncodingPmr(adj, labels, mr);
}

// CandidateNetwork::IsSoundAround over the flat arrays: `center` is
// unsound iff it has >= 2 neighbours over one base relation R while
// holding the foreign key referencing R. Neighbours of `center` are its
// parent plus its children; trees hold <= t_max nodes, so the pairwise
// duplicate-relation scan is cheap.
bool SoundAroundAttach(const SchemaGraph& schema_graph,
                       const std::pmr::vector<CnNode>& nodes,
                       const std::pmr::vector<int>& parents, int center,
                       std::pmr::memory_resource* mr) {
  std::pmr::vector<RelationId> nbr_rel(mr);
  nbr_rel.reserve(nodes.size());
  if (center > 0) nbr_rel.push_back(nodes[parents[center]].relation);
  for (size_t i = 1; i < nodes.size(); ++i) {
    if (parents[i] == center) nbr_rel.push_back(nodes[i].relation);
  }
  const RelationId s = nodes[center].relation;
  for (size_t i = 0; i < nbr_rel.size(); ++i) {
    bool first = true;
    for (size_t j = 0; j < i; ++j) {
      if (nbr_rel[j] == nbr_rel[i]) {
        first = false;
        break;
      }
    }
    if (!first) continue;  // relation already counted
    int count = 1;
    for (size_t j = i + 1; j < nbr_rel.size(); ++j) {
      if (nbr_rel[j] == nbr_rel[i]) ++count;
    }
    if (count >= 2 && schema_graph.References(s, nbr_rel[i])) return false;
  }
  return true;
}

}  // namespace

struct SingleCnScratch::Impl {
  /// Call-scoped arena: the BFS queue, surviving partial trees, and the
  /// canonical-form dedup set. Reset at each SingleCnInto entry; its
  /// chunks are retained, so repeat calls bump-allocate out of warm
  /// memory.
  Arena arena;
  /// Expansion-scoped arena: candidate trees, canonical encodings, and
  /// soundness scratch for ONE candidate expansion. Reset per candidate,
  /// so a long search's transient churn never accumulates.
  Arena frame_arena;

  explicit Impl(size_t chunk_bytes)
      : arena(chunk_bytes), frame_arena(chunk_bytes) {}
};

SingleCnScratch::SingleCnScratch(size_t arena_chunk_bytes)
    : impl_(std::make_unique<Impl>(arena_chunk_bytes)) {}
SingleCnScratch::~SingleCnScratch() = default;

size_t SingleCnScratch::arena_bytes_peak() const {
  return impl_->arena.bytes_peak() + impl_->frame_arena.bytes_peak();
}

bool SingleCnInto(const MatchGraph& match_graph,
                  const SingleCnOptions& options, SingleCnScratch* scratch,
                  CandidateNetwork* out) {
  const TupleSetGraph& g = match_graph.base();
  const std::vector<int>& match_nodes = match_graph.match_nodes();
  if (match_nodes.empty() || match_nodes.size() > 64) return false;
  // A CN contains every match node, so a match larger than t_max can never
  // admit one — without this check the BFS would exhaust the whole match
  // graph before concluding exactly that.
  if (match_nodes.size() > static_cast<size_t>(options.t_max)) {
    return false;
  }
  const uint64_t full_match =
      match_nodes.size() == 64 ? ~uint64_t{0}
                               : (uint64_t{1} << match_nodes.size()) - 1;

  auto match_bit = [&](int ts_node) -> uint64_t {
    for (size_t i = 0; i < match_nodes.size(); ++i) {
      if (match_nodes[i] == ts_node) return uint64_t{1} << i;
    }
    return 0;
  };

  auto cn_node = [&](int ts_node) {
    const TsNode& n = g.node(ts_node);
    return CnNode{n.relation, n.termset, n.tuple_set_index};
  };

  Arena& arena = scratch->impl()->arena;
  Arena& frame = scratch->impl()->frame_arena;
  arena.Reset();

  // Queue and dedup set live on the call arena; the vector's storage block
  // and the set's nodes/buckets bump-allocate out of retained chunks, so
  // nothing here touches the heap once the arenas are warm. The BFS
  // frontier is a vector plus a head cursor instead of a deque so popped
  // elements never shift.
  std::pmr::vector<PTree> queue(&arena);
  std::pmr::unordered_set<std::pmr::string> seen(&arena);
  size_t head = 0;

  // Line 2 of Algorithm 3: start from the first tuple-set of the match.
  PTree initial{std::pmr::polymorphic_allocator<std::byte>(&arena)};
  initial.nodes.push_back(cn_node(match_nodes[0]));
  initial.parents.push_back(-1);
  initial.ts_nodes.push_back(match_nodes[0]);
  initial.match_used = match_bit(match_nodes[0]);
  if (initial.match_used == full_match) {
    out->Assign(initial.nodes.data(), initial.parents.data(),
                initial.nodes.size());
    return true;
  }

  frame.Reset();
  seen.emplace(CanonicalFormPmr(initial.nodes, initial.parents, &frame));
  queue.push_back(std::move(initial));

  size_t expansions = 0;
  while (head < queue.size()) {
    if (++expansions > options.max_expansions) break;
    // Poll the cancel token coarsely; a clock read per dequeue would cost
    // more than the expansion itself on small match graphs.
    if (options.cancel != nullptr && (expansions & 0xFF) == 0 &&
        options.cancel->Expired()) {
      return false;
    }
    // Popping advances the cursor; moving the element out keeps `current`
    // valid across the push_backs below (which may relocate the queue).
    PTree current = std::move(queue[head]);
    ++head;
    if (current.nodes.size() >= static_cast<size_t>(options.t_max)) continue;

    for (size_t pos = 0; pos < current.ts_nodes.size(); ++pos) {
      for (int nbr : match_graph.Neighbors(current.ts_nodes[pos])) {
        // Line 8: a non-free tuple-set may appear at most once.
        if (!g.IsFree(nbr)) {
          bool used = false;
          for (int existing : current.ts_nodes) {
            if (existing == nbr) {
              used = true;
              break;
            }
          }
          if (used) continue;
        }
        // Build the candidate in the expansion arena; it graduates to the
        // call arena only if it survives the soundness and dedup gates,
        // so rejected candidates cost zero retained memory.
        frame.Reset();
        std::pmr::vector<CnNode> cand_nodes(current.nodes.begin(),
                                            current.nodes.end(), &frame);
        cand_nodes.push_back(cn_node(nbr));
        std::pmr::vector<int> cand_parents(current.parents.begin(),
                                           current.parents.end(), &frame);
        cand_parents.push_back(static_cast<int>(pos));
        // Soundness only needs re-checking around the attachment point.
        if (!SoundAroundAttach(g.schema_graph(), cand_nodes, cand_parents,
                               static_cast<int>(pos), &frame)) {
          continue;
        }
        const std::pmr::string canon =
            CanonicalFormPmr(cand_nodes, cand_parents, &frame);
        if (seen.find(canon) != seen.end()) continue;
        const uint64_t used_bits = current.match_used | match_bit(nbr);
        if (used_bits == full_match) {
          // Line 12: shortest CN containing the match.
          out->Assign(cand_nodes.data(), cand_parents.data(),
                      cand_nodes.size());
          return true;
        }
        seen.emplace(canon);  // copies the bytes into the call arena
        // Completion bound: each missing match node costs at least one
        // more tree node; prune branches that cannot fit within t_max.
        const int missing = __builtin_popcountll(full_match & ~used_bits);
        if (cand_nodes.size() + static_cast<size_t>(missing) >
            static_cast<size_t>(options.t_max)) {
          continue;
        }
        PTree next{std::pmr::polymorphic_allocator<std::byte>(&arena)};
        next.nodes.assign(cand_nodes.begin(), cand_nodes.end());
        next.parents.assign(cand_parents.begin(), cand_parents.end());
        next.ts_nodes.reserve(current.ts_nodes.size() + 1);
        next.ts_nodes.assign(current.ts_nodes.begin(),
                             current.ts_nodes.end());
        next.ts_nodes.push_back(nbr);
        next.match_used = used_bits;
        queue.push_back(std::move(next));
      }
    }
  }
  return false;
}

std::optional<CandidateNetwork> SingleCn(const MatchGraph& match_graph,
                                         const SingleCnOptions& options,
                                         SingleCnScratch* scratch) {
  std::optional<SingleCnScratch> local;
  if (scratch == nullptr) {
    local.emplace();
    scratch = &*local;
  }
  CandidateNetwork out;
  if (!SingleCnInto(match_graph, options, scratch, &out)) return std::nullopt;
  return out;
}

}  // namespace matcn
