#ifndef MATCN_CORE_MINIMAL_COVER_H_
#define MATCN_CORE_MINIMAL_COVER_H_

#include <vector>

#include "core/keyword_query.h"

namespace matcn {

/// True iff `cover` is a *minimal set cover* of `full` (Definition 8):
/// the union of its termsets equals `full` and removing any one termset
/// loses some keyword. Termsets must be non-empty; duplicates make the
/// cover non-minimal by definition.
bool IsMinimalCover(const std::vector<Termset>& cover, Termset full);

/// Counters from one EnumerateMinimalCovers search (bench/diagnostics).
struct CoverSearchStats {
  uint64_t probes = 0;              // recursion nodes visited
  uint64_t emitted = 0;             // minimal covers produced
  uint64_t pruned_unreachable = 0;  // subtrees cut by the suffix-OR bound
};

/// Enumerates every minimal cover of `full` that uses only termsets from
/// `available` (each at most once). `available` entries must be distinct,
/// non-empty subsets of `full`. A minimal cover of an n-keyword query has
/// at most n termsets [Hearne & Wagner 1973], which bounds the recursion.
/// Results are deterministic: covers are sorted vectors of termsets,
/// returned in lexicographic order. `max_covers` (0 = unlimited) stops the
/// enumeration early — the resource guard the adversarial many-keyword
/// workloads need.
///
/// The search is pure bitset work: a precomputed suffix-OR table prunes
/// branches whose remaining termsets cannot reach `full`, and the leaf
/// minimality test runs in O(k) via prefix/suffix OR accumulators over the
/// current cover (k <= kMaxKeywords + 1, so it lives in stack arrays).
/// `stats`, when non-null, receives search counters.
std::vector<std::vector<Termset>> EnumerateMinimalCovers(
    std::vector<Termset> available, Termset full, size_t max_covers = 0,
    CoverSearchStats* stats = nullptr);

}  // namespace matcn

#endif  // MATCN_CORE_MINIMAL_COVER_H_
