#include "core/candidate_network.h"

#include <algorithm>
#include <unordered_map>

#include "graph/tree_canonical.h"

namespace matcn {

CandidateNetwork CandidateNetwork::SingleNode(CnNode node) {
  CandidateNetwork cn;
  cn.nodes_.push_back(node);
  cn.parents_.push_back(-1);
  return cn;
}

CandidateNetwork CandidateNetwork::Extend(int attach_to, CnNode node) const {
  CandidateNetwork cn = *this;
  cn.nodes_.push_back(node);
  cn.parents_.push_back(attach_to);
  return cn;
}

int CandidateNetwork::num_non_free() const {
  int count = 0;
  for (const CnNode& n : nodes_) {
    if (!n.is_free()) ++count;
  }
  return count;
}

Termset CandidateNetwork::CoveredTermset() const {
  Termset t = 0;
  for (const CnNode& n : nodes_) t |= n.termset;
  return t;
}

std::vector<std::vector<int>> CandidateNetwork::Adjacency() const {
  std::vector<std::vector<int>> adj(nodes_.size());
  for (size_t i = 1; i < nodes_.size(); ++i) {
    adj[i].push_back(parents_[i]);
    adj[parents_[i]].push_back(static_cast<int>(i));
  }
  return adj;
}

std::vector<int> CandidateNetwork::Leaves() const {
  std::vector<std::vector<int>> adj = Adjacency();
  std::vector<int> leaves;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (adj[i].size() <= 1) leaves.push_back(static_cast<int>(i));
  }
  return leaves;
}

std::string CandidateNetwork::CanonicalForm() const {
  std::vector<std::string> labels;
  labels.reserve(nodes_.size());
  for (const CnNode& n : nodes_) {
    labels.push_back(std::to_string(n.relation) + "#" +
                     std::to_string(n.termset));
  }
  return CanonicalTreeEncoding(Adjacency(), labels);
}

bool CandidateNetwork::IsSoundAround(const SchemaGraph& schema_graph,
                                     int center) const {
  const std::vector<std::vector<int>> adj = Adjacency();
  // Count neighbours of `center` per base relation.
  std::unordered_map<RelationId, int> per_relation;
  for (int nbr : adj[center]) {
    ++per_relation[nodes_[nbr].relation];
  }
  const RelationId s = nodes_[center].relation;
  for (const auto& [r, count] : per_relation) {
    if (count >= 2 && schema_graph.References(s, r)) return false;
  }
  return true;
}

bool CandidateNetwork::IsSound(const SchemaGraph& schema_graph) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!IsSoundAround(schema_graph, static_cast<int>(i))) return false;
  }
  return true;
}

std::string CandidateNetwork::ToString(const DatabaseSchema& schema,
                                       const KeywordQuery& query) const {
  std::string out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) out += " ⋈ ";
    out += schema.relation(nodes_[i].relation).name();
    out += "^";
    out += query.TermsetToString(nodes_[i].termset);
  }
  return out;
}

}  // namespace matcn
