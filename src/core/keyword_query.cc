#include "core/keyword_query.h"

#include <unordered_set>

#include "common/strings.h"
#include "indexing/tokenizer.h"

namespace matcn {

Result<KeywordQuery> KeywordQuery::Parse(const std::string& text) {
  return FromKeywords(Tokenizer::UniqueTokens(text));
}

Result<KeywordQuery> KeywordQuery::FromKeywords(
    std::vector<std::string> keywords) {
  KeywordQuery q;
  std::unordered_set<std::string> seen;
  for (std::string& kw : keywords) {
    std::string lower = ToLower(Trim(kw));
    if (lower.empty()) continue;
    if (seen.insert(lower).second) q.keywords_.push_back(std::move(lower));
  }
  if (q.keywords_.empty()) {
    return Status::InvalidArgument("query has no keywords");
  }
  if (q.keywords_.size() > kMaxKeywords) {
    return Status::InvalidArgument("query exceeds " +
                                   std::to_string(kMaxKeywords) +
                                   " keywords");
  }
  return q;
}

std::string KeywordQuery::TermsetToString(Termset t) const {
  std::string out = "{";
  bool first = true;
  for (size_t i = 0; i < keywords_.size(); ++i) {
    if ((t >> i) & 1) {
      if (!first) out += ",";
      out += keywords_[i];
      first = false;
    }
  }
  out += "}";
  return out;
}

int KeywordQuery::KeywordIndex(const std::string& keyword) const {
  for (size_t i = 0; i < keywords_.size(); ++i) {
    if (keywords_[i] == keyword) return static_cast<int>(i);
  }
  return -1;
}

std::string KeywordQuery::ToString() const {
  return TermsetToString(FullTermset());
}

}  // namespace matcn
