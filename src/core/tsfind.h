#ifndef MATCN_CORE_TSFIND_H_
#define MATCN_CORE_TSFIND_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/keyword_query.h"
#include "core/tuple_set.h"
#include "indexing/term_index.h"
#include "storage/database.h"

namespace matcn {

/// One pair <K, T_K> manipulated by TSInter (Algorithm 5): a termset and
/// the sorted list of tuples currently assigned to it.
struct TermsetTuples {
  Termset termset = 0;
  std::vector<TupleId> tuples;
};

/// TSInter (paper Algorithm 5): ECLAT-style refinement of per-keyword
/// tuple lists into per-termset lists. On return, each tuple appears in
/// exactly one entry — the termset of *all* query keywords it contains —
/// and entries whose lists became empty are dropped. Input lists must be
/// sorted; entries must have distinct termsets.
std::vector<TermsetTuples> TsInter(std::vector<TermsetTuples> pairs);

/// The three strategies the paper considers for Part 1 of TSFind
/// (obtaining the per-keyword tuple lists); Parts 2 and 3 are shared.
class TupleSetFinder {
 public:
  /// Memory-based version (Algorithm 6, `TSFind_Mem`): per-keyword lists
  /// come from the prebuilt Term Index; no database access at query time.
  /// Note: if the index skipped stopwords, stopword keywords resolve to
  /// empty lists here (the disk variants still find them).
  static std::vector<TupleSet> FindMem(const TermIndex& index,
                                       const KeywordQuery& query);

  /// Disk-based version (Algorithm 4, `TSFind`): per-keyword lists come
  /// from sequential scans of the binary relation files under `dir` —
  /// real I/O per query, standing in for the paper's per-query SQL ILIKE
  /// probes against PostgreSQL.
  static Result<std::vector<TupleSet>> FindDisk(const std::string& dir,
                                                const DatabaseSchema& schema,
                                                const KeywordQuery& query);

  /// In-memory full-scan version: like FindDisk but scanning the resident
  /// Database. Used by tests as the semantics oracle for the other two.
  static std::vector<TupleSet> FindScan(const Database& db,
                                        const KeywordQuery& query);

  /// Parts 2+3: refine per-keyword lists with TsInter and group the result
  /// by relation into non-free, non-empty tuple-sets (the set R_Q).
  static std::vector<TupleSet> BuildTupleSets(
      std::vector<TermsetTuples> keyword_lists);
};

}  // namespace matcn

#endif  // MATCN_CORE_TSFIND_H_
