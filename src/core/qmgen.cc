#include "core/qmgen.h"

#include <algorithm>
#include <utility>

#include "core/minimal_cover.h"

namespace matcn {
namespace {

void EnumerateSubsets(const std::vector<TupleSet>& tuple_sets,
                      const KeywordQuery& query, size_t target_size,
                      size_t start, std::vector<int>* current,
                      std::vector<QueryMatch>* out) {
  if (current->size() == target_size) {
    std::vector<Termset> termsets;
    termsets.reserve(current->size());
    for (int idx : *current) termsets.push_back(tuple_sets[idx].termset);
    // Definition 8 requires pairwise-distinct termsets; a duplicate also
    // fails minimality inside IsMinimalCover, but check cheaply here.
    std::vector<Termset> sorted = termsets;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return;
    }
    if (IsMinimalCover(termsets, query.FullTermset())) {
      out->push_back(*current);
    }
    return;
  }
  for (size_t i = start; i < tuple_sets.size(); ++i) {
    current->push_back(static_cast<int>(i));
    EnumerateSubsets(tuple_sets, query, target_size, i + 1, current, out);
    current->pop_back();
  }
}

}  // namespace

std::vector<QueryMatch> GenerateMatchesNaive(
    const KeywordQuery& query, const std::vector<TupleSet>& tuple_sets) {
  std::vector<QueryMatch> out;
  std::vector<int> current;
  for (size_t size = 1; size <= query.size(); ++size) {
    EnumerateSubsets(tuple_sets, query, size, 0, &current, &out);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<QueryMatch> GenerateMatches(
    const KeywordQuery& query, const std::vector<TupleSet>& tuple_sets,
    size_t max_matches, const CancelToken* cancel) {
  // Group tuple-set indexes by termset with one flat stable sort instead
  // of a node-per-termset std::map: same ascending-termset group order,
  // same within-group index order, no per-group heap churn.
  std::vector<std::pair<Termset, int>> by_termset;
  by_termset.reserve(tuple_sets.size());
  for (size_t i = 0; i < tuple_sets.size(); ++i) {
    by_termset.emplace_back(tuple_sets[i].termset, static_cast<int>(i));
  }
  std::stable_sort(by_termset.begin(), by_termset.end(),
                   [](const std::pair<Termset, int>& a,
                      const std::pair<Termset, int>& b) {
                     return a.first < b.first;
                   });
  std::vector<Termset> available;
  std::vector<std::pair<size_t, size_t>> groups;  // [begin, end) in by_termset
  for (size_t i = 0; i < by_termset.size();) {
    size_t j = i;
    while (j < by_termset.size() && by_termset[j].first == by_termset[i].first) {
      ++j;
    }
    available.push_back(by_termset[i].first);
    groups.emplace_back(i, j);
    i = j;
  }

  const std::vector<std::vector<Termset>> covers = EnumerateMinimalCovers(
      available, query.FullTermset(), max_matches);

  std::vector<QueryMatch> out;
  for (const std::vector<Termset>& cover : covers) {
    if (cancel != nullptr && cancel->Expired()) break;
    // Cartesian product over the relation choices for each termset.
    // `available` is sorted, so each cover termset binary-searches to its
    // group of tuple-set indexes.
    std::vector<std::pair<size_t, size_t>> choices;
    choices.reserve(cover.size());
    for (Termset t : cover) {
      const auto it =
          std::lower_bound(available.begin(), available.end(), t);
      choices.push_back(groups[static_cast<size_t>(it - available.begin())]);
    }
    std::vector<size_t> pick(cover.size(), 0);
    while (true) {
      QueryMatch match;
      match.reserve(cover.size());
      for (size_t i = 0; i < cover.size(); ++i) {
        match.push_back(by_termset[choices[i].first + pick[i]].second);
      }
      std::sort(match.begin(), match.end());
      out.push_back(std::move(match));
      if (max_matches > 0 && out.size() >= max_matches) {
        std::sort(out.begin(), out.end());
        return out;
      }
      // The product of large termset groups can be huge; poll coarsely.
      if (cancel != nullptr && (out.size() & 0x3FF) == 0 &&
          cancel->Expired()) {
        break;
      }
      // Advance the mixed-radix counter.
      size_t pos = 0;
      while (pos < pick.size()) {
        if (++pick[pos] < choices[pos].second - choices[pos].first) break;
        pick[pos] = 0;
        ++pos;
      }
      if (pos == pick.size()) break;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace matcn
