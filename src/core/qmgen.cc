#include "core/qmgen.h"

#include <algorithm>
#include <map>

#include "core/minimal_cover.h"

namespace matcn {
namespace {

void EnumerateSubsets(const std::vector<TupleSet>& tuple_sets,
                      const KeywordQuery& query, size_t target_size,
                      size_t start, std::vector<int>* current,
                      std::vector<QueryMatch>* out) {
  if (current->size() == target_size) {
    std::vector<Termset> termsets;
    termsets.reserve(current->size());
    for (int idx : *current) termsets.push_back(tuple_sets[idx].termset);
    // Definition 8 requires pairwise-distinct termsets; a duplicate also
    // fails minimality inside IsMinimalCover, but check cheaply here.
    std::vector<Termset> sorted = termsets;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return;
    }
    if (IsMinimalCover(termsets, query.FullTermset())) {
      out->push_back(*current);
    }
    return;
  }
  for (size_t i = start; i < tuple_sets.size(); ++i) {
    current->push_back(static_cast<int>(i));
    EnumerateSubsets(tuple_sets, query, target_size, i + 1, current, out);
    current->pop_back();
  }
}

}  // namespace

std::vector<QueryMatch> GenerateMatchesNaive(
    const KeywordQuery& query, const std::vector<TupleSet>& tuple_sets) {
  std::vector<QueryMatch> out;
  std::vector<int> current;
  for (size_t size = 1; size <= query.size(); ++size) {
    EnumerateSubsets(tuple_sets, query, size, 0, &current, &out);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<QueryMatch> GenerateMatches(
    const KeywordQuery& query, const std::vector<TupleSet>& tuple_sets,
    size_t max_matches, const CancelToken* cancel) {
  // Group tuple-set indexes by termset.
  std::map<Termset, std::vector<int>> by_termset;
  for (size_t i = 0; i < tuple_sets.size(); ++i) {
    by_termset[tuple_sets[i].termset].push_back(static_cast<int>(i));
  }
  std::vector<Termset> available;
  available.reserve(by_termset.size());
  for (const auto& [termset, indexes] : by_termset) {
    available.push_back(termset);
  }

  const std::vector<std::vector<Termset>> covers = EnumerateMinimalCovers(
      available, query.FullTermset(), max_matches);

  std::vector<QueryMatch> out;
  for (const std::vector<Termset>& cover : covers) {
    if (cancel != nullptr && cancel->Expired()) break;
    // Cartesian product over the relation choices for each termset.
    std::vector<const std::vector<int>*> choices;
    choices.reserve(cover.size());
    for (Termset t : cover) choices.push_back(&by_termset.at(t));
    std::vector<size_t> pick(cover.size(), 0);
    while (true) {
      QueryMatch match;
      match.reserve(cover.size());
      for (size_t i = 0; i < cover.size(); ++i) {
        match.push_back((*choices[i])[pick[i]]);
      }
      std::sort(match.begin(), match.end());
      out.push_back(std::move(match));
      if (max_matches > 0 && out.size() >= max_matches) {
        std::sort(out.begin(), out.end());
        return out;
      }
      // The product of large termset groups can be huge; poll coarsely.
      if (cancel != nullptr && (out.size() & 0x3FF) == 0 &&
          cancel->Expired()) {
        break;
      }
      // Advance the mixed-radix counter.
      size_t pos = 0;
      while (pos < pick.size()) {
        if (++pick[pos] < choices[pos]->size()) break;
        pick[pos] = 0;
        ++pos;
      }
      if (pos == pick.size()) break;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace matcn
