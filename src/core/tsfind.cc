#include "core/tsfind.h"

#include <algorithm>
#include <map>
#include <type_traits>

#include "common/strings.h"
#include "simd/kernels.h"
#include "storage/disk.h"

namespace matcn {
namespace {

// The intersection kernels operate on the packed uint64 form directly;
// TupleId is that uint64 and orders by it.
static_assert(sizeof(TupleId) == sizeof(uint64_t));
static_assert(std::is_trivially_copyable_v<TupleId>);

std::vector<TupleId> Intersect(const std::vector<TupleId>& a,
                               const std::vector<TupleId>& b) {
  // Galloping + SIMD block merge (simd/kernels.h) — the hottest operation
  // of TSInter's pairwise refinement.
  std::vector<TupleId> out(std::min(a.size(), b.size()));
  const size_t n = simd::IntersectSortedU64(
      reinterpret_cast<const uint64_t*>(a.data()), a.size(),
      reinterpret_cast<const uint64_t*>(b.data()), b.size(),
      reinterpret_cast<uint64_t*>(out.data()));
  out.resize(n);
  return out;
}

std::vector<TupleId> Subtract(const std::vector<TupleId>& a,
                              const std::vector<TupleId>& b) {
  std::vector<TupleId> out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

std::vector<TupleId> Union(const std::vector<TupleId>& a,
                           const std::vector<TupleId>& b) {
  std::vector<TupleId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

std::vector<TermsetTuples> TsInter(std::vector<TermsetTuples> pairs) {
  // P_prev starts as the input; intersections below read the *original*
  // lists (captured in `pairs`) while subtractions update P_prev, matching
  // Algorithm 5's use of P vs P_prev.
  std::map<Termset, std::vector<TupleId>> prev;
  for (const TermsetTuples& p : pairs) prev[p.termset] = p.tuples;

  std::map<Termset, std::vector<TupleId>> cur;
  const size_t n = pairs.size();
  for (size_t i = 0; i + 1 < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const Termset x = pairs[i].termset | pairs[j].termset;
      std::vector<TupleId> tx = Intersect(pairs[i].tuples, pairs[j].tuples);
      if (tx.empty()) continue;
      // Tuples containing the larger termset X cannot belong to K_i or
      // K_j (tuple-sets contain *exactly* their termset's keywords).
      prev[pairs[i].termset] = Subtract(prev[pairs[i].termset], tx);
      prev[pairs[j].termset] = Subtract(prev[pairs[j].termset], tx);
      auto it = cur.find(x);
      if (it == cur.end()) {
        cur.emplace(x, std::move(tx));
      } else {
        it->second = Union(it->second, tx);
      }
    }
  }

  std::vector<TermsetTuples> result;
  if (!cur.empty()) {
    std::vector<TermsetTuples> cur_pairs;
    cur_pairs.reserve(cur.size());
    for (auto& [termset, tuples] : cur) {
      cur_pairs.push_back(TermsetTuples{termset, std::move(tuples)});
    }
    result = TsInter(std::move(cur_pairs));
  }

  // Merge the refined deeper level with what is left at this level,
  // unioning lists that share a termset and dropping empties.
  std::map<Termset, std::vector<TupleId>> merged;
  for (auto& r : result) merged[r.termset] = std::move(r.tuples);
  for (auto& [termset, tuples] : prev) {
    if (tuples.empty()) continue;
    auto it = merged.find(termset);
    if (it == merged.end()) {
      merged[termset] = std::move(tuples);
    } else {
      it->second = Union(it->second, tuples);
    }
  }
  std::vector<TermsetTuples> out;
  out.reserve(merged.size());
  for (auto& [termset, tuples] : merged) {
    if (!tuples.empty()) out.push_back(TermsetTuples{termset, std::move(tuples)});
  }
  return out;
}

std::vector<TupleSet> TupleSetFinder::BuildTupleSets(
    std::vector<TermsetTuples> keyword_lists) {
  // Rarest-first (df-ascending) evaluation order, the ngram-profile idiom:
  // TSInter's pairwise loop then hits the small lists first, so the
  // subtract/union churn runs on already-shrunk lists and the galloping
  // intersection sees maximal skew. Output is unaffected — TSInter's
  // intersections read the *original* captured lists (symmetric in the
  // pair), its subtract/union updates commute as set operations, and
  // every merge goes through termset-keyed std::maps, so the result is
  // independent of input order (the differential test pins this).
  std::sort(keyword_lists.begin(), keyword_lists.end(),
            [](const TermsetTuples& a, const TermsetTuples& b) {
              if (a.tuples.size() != b.tuples.size()) {
                return a.tuples.size() < b.tuples.size();
              }
              return a.termset < b.termset;
            });
  std::vector<TermsetTuples> refined = TsInter(std::move(keyword_lists));
  std::vector<TupleSet> out;
  for (TermsetTuples& entry : refined) {
    // Lists are sorted by packed TupleId, so tuples of the same relation
    // are contiguous.
    size_t start = 0;
    while (start < entry.tuples.size()) {
      const RelationId rel = entry.tuples[start].relation();
      size_t end = start;
      while (end < entry.tuples.size() &&
             entry.tuples[end].relation() == rel) {
        ++end;
      }
      TupleSet ts;
      ts.relation = rel;
      ts.termset = entry.termset;
      ts.tuples.assign(entry.tuples.begin() + start,
                       entry.tuples.begin() + end);
      out.push_back(std::move(ts));
      start = end;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TupleSet> TupleSetFinder::FindMem(const TermIndex& index,
                                              const KeywordQuery& query) {
  // Per-worker decode/merge buffers: repeated queries on one thread reuse
  // the same posting scratch instead of allocating run vectors per term.
  thread_local PostingScratch tls_scratch;
  std::vector<TermsetTuples> lists;
  lists.reserve(query.size());
  for (size_t i = 0; i < query.size(); ++i) {
    TermsetTuples entry;
    entry.termset = Termset{1} << i;
    index.TuplesForInto(query.keyword(i), &tls_scratch, &entry.tuples);
    lists.push_back(std::move(entry));
  }
  return BuildTupleSets(std::move(lists));
}

Result<std::vector<TupleSet>> TupleSetFinder::FindDisk(
    const std::string& dir, const DatabaseSchema& schema,
    const KeywordQuery& query) {
  std::vector<TermsetTuples> lists;
  lists.reserve(query.size());
  for (size_t i = 0; i < query.size(); ++i) {
    TermsetTuples entry;
    entry.termset = Termset{1} << i;
    for (RelationId r = 0; r < schema.num_relations(); ++r) {
      Result<std::vector<uint64_t>> rows =
          DiskStorage::ScanForKeyword(dir, schema.relation(r),
                                      query.keyword(i));
      if (!rows.ok()) return rows.status();
      for (uint64_t row : *rows) entry.tuples.emplace_back(r, row);
    }
    std::sort(entry.tuples.begin(), entry.tuples.end());
    lists.push_back(std::move(entry));
  }
  return BuildTupleSets(std::move(lists));
}

std::vector<TupleSet> TupleSetFinder::FindScan(const Database& db,
                                               const KeywordQuery& query) {
  std::vector<TermsetTuples> lists;
  lists.reserve(query.size());
  for (size_t i = 0; i < query.size(); ++i) {
    TermsetTuples entry;
    entry.termset = Termset{1} << i;
    const std::string& kw = query.keyword(i);
    for (RelationId r = 0; r < db.num_relations(); ++r) {
      const Relation& rel = db.relation(r);
      const RelationSchema& schema = rel.schema();
      for (uint64_t row = 0; row < rel.num_tuples(); ++row) {
        const Tuple& tuple = rel.tuple(row);
        for (uint32_t a = 0; a < schema.num_attributes(); ++a) {
          const Attribute& attr = schema.attribute(a);
          if (attr.type != ValueType::kText || !attr.searchable) continue;
          if (ContainsWordCaseInsensitive(tuple[a].AsText(), kw)) {
            entry.tuples.emplace_back(r, row);
            break;
          }
        }
      }
    }
    lists.push_back(std::move(entry));
  }
  return BuildTupleSets(std::move(lists));
}

}  // namespace matcn
