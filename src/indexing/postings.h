#ifndef MATCN_INDEXING_POSTINGS_H_
#define MATCN_INDEXING_POSTINGS_H_

#include <cstdint>
#include <vector>

#include "storage/tuple_id.h"

namespace matcn {

/// A posting list of sorted, unique TupleIds, optionally held in
/// variable-byte delta-encoded form. Compression is the paper's suggested
/// mitigation for Term Index memory pressure (Section 6, future work);
/// the ablation bench quantifies the trade-off.
class PostingList {
 public:
  PostingList() = default;

  /// Builds from a sorted unique id vector. If `compress` is true the ids
  /// are stored varbyte-delta encoded, otherwise raw.
  static PostingList Build(std::vector<TupleId> ids, bool compress);

  /// Materializes the ids (decodes if compressed).
  std::vector<TupleId> Decode() const;

  size_t size() const { return count_; }
  bool compressed() const { return compressed_; }

  /// Bytes of heap payload used by this list (the memory-ablation metric).
  size_t MemoryBytes() const;

 private:
  bool compressed_ = false;
  size_t count_ = 0;
  std::vector<TupleId> raw_;
  std::vector<uint8_t> encoded_;
};

/// Merges already-sorted unique id runs into one sorted unique vector via
/// a k-way merge — O(n log k) instead of the concat + full-sort O(n log n)
/// it replaces on the TSFind hot path. Empty runs are fine.
std::vector<TupleId> MergeSortedUnique(
    std::vector<std::vector<TupleId>> runs);

/// Varbyte primitives, exposed for direct testing.
void VarbyteEncode(uint64_t v, std::vector<uint8_t>* out);
/// Decodes one value starting at `*pos`, advancing it. Requires well-formed
/// input produced by VarbyteEncode.
uint64_t VarbyteDecode(const std::vector<uint8_t>& buf, size_t* pos);

}  // namespace matcn

#endif  // MATCN_INDEXING_POSTINGS_H_
