#ifndef MATCN_INDEXING_POSTINGS_H_
#define MATCN_INDEXING_POSTINGS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "storage/tuple_id.h"

namespace matcn {

/// A posting list of sorted, unique TupleIds, optionally held in
/// variable-byte delta-encoded form. Compression is the paper's suggested
/// mitigation for Term Index memory pressure (Section 6, future work);
/// the ablation bench quantifies the trade-off.
class PostingList {
 public:
  PostingList() = default;

  /// Builds from a sorted unique id vector. If `compress` is true the ids
  /// are stored varbyte-delta encoded, otherwise raw.
  static PostingList Build(std::vector<TupleId> ids, bool compress);

  /// Materializes the ids (decodes if compressed).
  std::vector<TupleId> Decode() const;

  /// Hot-path variant of Decode(): overwrites `*out`, reusing its capacity
  /// instead of allocating a fresh vector per lookup. Compressed lists go
  /// through the SIMD block-decode kernels (simd/kernels.h).
  void DecodeInto(std::vector<TupleId>* out) const;

  size_t size() const { return count_; }
  bool compressed() const { return compressed_; }

  /// Bytes of heap payload used by this list (the memory-ablation metric).
  size_t MemoryBytes() const;

 private:
  bool compressed_ = false;
  size_t count_ = 0;
  std::vector<TupleId> raw_;
  std::vector<uint8_t> encoded_;
};

/// Merges already-sorted unique id runs into one sorted unique vector via
/// a k-way merge — O(n log k) instead of the concat + full-sort O(n log n)
/// it replaces on the TSFind hot path. Empty runs are fine.
std::vector<TupleId> MergeSortedUnique(
    std::vector<std::vector<TupleId>> runs);

/// Reusable per-worker decode + merge buffers for the posting hot path:
/// run vectors (and the k-way merge heap) keep their capacity across
/// lookups, so a warmed-up worker resolves a term with zero heap
/// allocations. One scratch per worker; never shrinks.
struct PostingScratch {
  std::vector<std::vector<TupleId>> runs;
  size_t runs_used = 0;
  /// (run index, position) heads for the k-way merge.
  std::vector<std::pair<size_t, size_t>> heap;

  /// Starts a fresh lookup: previously acquired runs become reusable.
  void BeginRound() { runs_used = 0; }

  /// Hands out the next reusable run buffer (contents unspecified; the
  /// caller overwrites via DecodeInto or assign).
  std::vector<TupleId>* AcquireRun() {
    if (runs_used == runs.size()) runs.emplace_back();
    return &runs[runs_used++];
  }
};

/// MergeSortedUnique over scratch->runs[0..runs_used), writing the merged
/// sorted unique ids into `*out` (overwritten; capacity reused). Run
/// buffers may be swapped with `*out` as an optimization — their contents
/// are unspecified afterwards, their capacity stays pooled.
void MergeSortedUniqueInto(PostingScratch* scratch,
                           std::vector<TupleId>* out);

/// Varbyte primitives, exposed for direct testing.
void VarbyteEncode(uint64_t v, std::vector<uint8_t>* out);
/// Decodes one value starting at `*pos`, advancing it. Requires well-formed
/// input produced by VarbyteEncode.
uint64_t VarbyteDecode(const std::vector<uint8_t>& buf, size_t* pos);

}  // namespace matcn

#endif  // MATCN_INDEXING_POSTINGS_H_
