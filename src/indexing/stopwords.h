#ifndef MATCN_INDEXING_STOPWORDS_H_
#define MATCN_INDEXING_STOPWORDS_H_

#include <string_view>

namespace matcn {

/// True for common English function words. The paper suggests skipping
/// stop words when building the Term Index to reduce its memory footprint;
/// index construction takes this as an option.
bool IsStopword(std::string_view term);

/// Number of words in the built-in stopword list (for tests).
size_t StopwordCount();

}  // namespace matcn

#endif  // MATCN_INDEXING_STOPWORDS_H_
