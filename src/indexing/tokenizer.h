#ifndef MATCN_INDEXING_TOKENIZER_H_
#define MATCN_INDEXING_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace matcn {

/// Splits text into lowercase alphanumeric tokens. This single definition
/// of "term" is shared by the Term Index builder, the disk scan predicate
/// and the query parser, so the disk-based and memory-based MatCNGen
/// variants see identical keyword semantics (a property the tests assert).
class Tokenizer {
 public:
  /// All maximal runs of [A-Za-z0-9], lowercased, in order of appearance.
  static std::vector<std::string> Tokenize(std::string_view text);

  /// Tokenize + dedup (first occurrence order preserved).
  static std::vector<std::string> UniqueTokens(std::string_view text);
};

}  // namespace matcn

#endif  // MATCN_INDEXING_TOKENIZER_H_
