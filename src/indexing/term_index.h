#ifndef MATCN_INDEXING_TERM_INDEX_H_
#define MATCN_INDEXING_TERM_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "indexing/postings.h"
#include "storage/database.h"
#include "storage/tuple_id.h"

namespace matcn {

struct TermIndexOptions {
  /// Skip common English stopwords when indexing (paper Sec. 6).
  bool skip_stopwords = true;
  /// Varbyte-delta compress posting lists (paper's future-work suggestion;
  /// measured by the index ablation bench).
  bool compress_postings = false;
  /// When non-empty, only relations `r` with `relation_mask[r] != 0` are
  /// scanned and indexed (relations past the mask's end are skipped too).
  /// Sharded deployments build each shard's index over the relations it
  /// owns; the union of the shards' posting lists is exactly the
  /// unmasked index, which is what makes the scatter-merge differential
  /// hold. Empty = index everything.
  std::vector<uint8_t> relation_mask;
};

/// One inverted-list element: the paper's triple <A_i, f_{k,i}, T_{k,i}> —
/// an attribute, the term's occurrence frequency in it, and the ids of the
/// tuples whose value of that attribute contains the term.
struct AttributeOccurrence {
  RelationId relation = 0;
  uint32_t attribute = 0;
  uint64_t frequency = 0;
  PostingList tuples;
};

/// The in-memory inverted index over all searchable text attributes of a
/// Database ("Term Index", paper Section 6). Built once in a preprocessing
/// pass that scans every relation exactly once; afterwards the memory-based
/// MatCNGen answers keyword lookups with zero database access.
class TermIndex {
 public:
  /// Scans `db` and builds the index. `db` must outlive nothing here — the
  /// index stores only ids and strings, never tuple pointers.
  static TermIndex Build(const Database& db, TermIndexOptions options = {});

  /// The inverted list for `term` (already lowercase), or nullptr.
  const std::vector<AttributeOccurrence>* Lookup(
      const std::string& term) const;

  /// All tuples containing `term` in any searchable attribute, sorted and
  /// deduplicated — the list TSFind_Mem starts from.
  std::vector<TupleId> TuplesFor(const std::string& term) const;

  /// Scratch-backed variant of TuplesFor for the query hot path: decodes
  /// each per-attribute posting into pooled run buffers and merges into
  /// `*out` (overwritten, capacity reused) — zero heap allocations once
  /// the worker's scratch is warm.
  void TuplesForInto(const std::string& term, PostingScratch* scratch,
                     std::vector<TupleId>* out) const;

  /// Number of distinct tuples (across the database) containing `term`.
  uint64_t DocumentFrequency(const std::string& term) const;

  size_t num_terms() const { return index_.size(); }
  uint64_t total_tuples() const { return total_tuples_; }

  /// All indexed terms, sorted (deterministic order for samplers).
  std::vector<std::string> AllTerms() const;

  /// Incrementally indexes one newly appended tuple — the paper's
  /// future-work item of keeping the Term Index up to date with database
  /// changes (e.g. driven by insert triggers) instead of rebuilding.
  /// `id` must identify a tuple not yet indexed. Uses the options the
  /// index was built with (stopwords, compression).
  void ApplyInsert(const Database& db, TupleId id);

  /// Approximate heap bytes used by posting payloads (ablation metric).
  size_t PostingMemoryBytes() const;

 private:
  std::unordered_map<std::string, std::vector<AttributeOccurrence>> index_;
  // Cached per-term distinct-tuple counts (document frequencies).
  std::unordered_map<std::string, uint64_t> doc_freq_;
  uint64_t total_tuples_ = 0;
  TermIndexOptions options_;
};

}  // namespace matcn

#endif  // MATCN_INDEXING_TERM_INDEX_H_
