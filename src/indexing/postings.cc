#include "indexing/postings.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace matcn {

void VarbyteEncode(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

uint64_t VarbyteDecode(const std::vector<uint8_t>& buf, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < buf.size()) {
    uint8_t byte = buf[(*pos)++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

PostingList PostingList::Build(std::vector<TupleId> ids, bool compress) {
  PostingList list;
  list.count_ = ids.size();
  list.compressed_ = compress;
  if (!compress) {
    list.raw_ = std::move(ids);
    // Capacity == size keeps MemoryBytes() deterministic regardless of the
    // growth history of the vector handed in.
    list.raw_.shrink_to_fit();
    return list;
  }
  uint64_t prev = 0;
  for (const TupleId& id : ids) {
    VarbyteEncode(id.packed() - prev, &list.encoded_);
    prev = id.packed();
  }
  list.encoded_.shrink_to_fit();
  return list;
}

std::vector<TupleId> PostingList::Decode() const {
  if (!compressed_) return raw_;
  std::vector<TupleId> ids;
  ids.reserve(count_);
  uint64_t prev = 0;
  size_t pos = 0;
  for (size_t i = 0; i < count_; ++i) {
    prev += VarbyteDecode(encoded_, &pos);
    ids.push_back(TupleId::FromPacked(prev));
  }
  return ids;
}

std::vector<TupleId> MergeSortedUnique(
    std::vector<std::vector<TupleId>> runs) {
  if (runs.empty()) return {};
  if (runs.size() == 1) return std::move(runs[0]);

  size_t total = 0;
  for (const auto& run : runs) total += run.size();
  std::vector<TupleId> out;
  out.reserve(total);

  if (runs.size() == 2) {  // common case: binary merge, no heap
    const auto& a = runs[0];
    const auto& b = runs[1];
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      const TupleId next = a[i] < b[j] ? a[i] : b[j];
      if (a[i] == next) ++i;
      if (j < b.size() && b[j] == next) ++j;
      if (out.empty() || out.back() != next) out.push_back(next);
    }
    for (; i < a.size(); ++i) {
      if (out.empty() || out.back() != a[i]) out.push_back(a[i]);
    }
    for (; j < b.size(); ++j) {
      if (out.empty() || out.back() != b[j]) out.push_back(b[j]);
    }
    return out;
  }

  // (run index, position); min-heap on the head id of each run.
  using Head = std::pair<size_t, size_t>;
  auto greater = [&runs](const Head& x, const Head& y) {
    return runs[y.first][y.second] < runs[x.first][x.second];
  };
  std::priority_queue<Head, std::vector<Head>, decltype(greater)> heap(
      greater);
  for (size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].empty()) heap.push({r, 0});
  }
  while (!heap.empty()) {
    const Head head = heap.top();
    heap.pop();
    const TupleId id = runs[head.first][head.second];
    if (out.empty() || out.back() != id) out.push_back(id);
    if (head.second + 1 < runs[head.first].size()) {
      heap.push({head.first, head.second + 1});
    }
  }
  return out;
}

size_t PostingList::MemoryBytes() const {
  if (compressed_) return encoded_.capacity();
  return raw_.capacity() * sizeof(TupleId);
}

}  // namespace matcn
