#include "indexing/postings.h"

namespace matcn {

void VarbyteEncode(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

uint64_t VarbyteDecode(const std::vector<uint8_t>& buf, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < buf.size()) {
    uint8_t byte = buf[(*pos)++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

PostingList PostingList::Build(std::vector<TupleId> ids, bool compress) {
  PostingList list;
  list.count_ = ids.size();
  list.compressed_ = compress;
  if (!compress) {
    list.raw_ = std::move(ids);
    return list;
  }
  uint64_t prev = 0;
  for (const TupleId& id : ids) {
    VarbyteEncode(id.packed() - prev, &list.encoded_);
    prev = id.packed();
  }
  list.encoded_.shrink_to_fit();
  return list;
}

std::vector<TupleId> PostingList::Decode() const {
  if (!compressed_) return raw_;
  std::vector<TupleId> ids;
  ids.reserve(count_);
  uint64_t prev = 0;
  size_t pos = 0;
  for (size_t i = 0; i < count_; ++i) {
    prev += VarbyteDecode(encoded_, &pos);
    ids.push_back(TupleId::FromPacked(prev));
  }
  return ids;
}

size_t PostingList::MemoryBytes() const {
  if (compressed_) return encoded_.capacity();
  return raw_.capacity() * sizeof(TupleId);
}

}  // namespace matcn
