#include "indexing/postings.h"

#include <algorithm>
#include <queue>
#include <type_traits>
#include <utility>

#include "simd/kernels.h"

namespace matcn {

void VarbyteEncode(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

uint64_t VarbyteDecode(const std::vector<uint8_t>& buf, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < buf.size()) {
    uint8_t byte = buf[(*pos)++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

PostingList PostingList::Build(std::vector<TupleId> ids, bool compress) {
  PostingList list;
  list.count_ = ids.size();
  list.compressed_ = compress;
  if (!compress) {
    list.raw_ = std::move(ids);
    // Capacity == size keeps MemoryBytes() deterministic regardless of the
    // growth history of the vector handed in.
    list.raw_.shrink_to_fit();
    return list;
  }
  uint64_t prev = 0;
  for (const TupleId& id : ids) {
    VarbyteEncode(id.packed() - prev, &list.encoded_);
    prev = id.packed();
  }
  list.encoded_.shrink_to_fit();
  return list;
}

std::vector<TupleId> PostingList::Decode() const {
  std::vector<TupleId> ids;
  DecodeInto(&ids);
  return ids;
}

void PostingList::DecodeInto(std::vector<TupleId>* out) const {
  if (!compressed_) {
    out->assign(raw_.begin(), raw_.end());
    return;
  }
  // The block kernels produce absolute packed ids; TupleId is a single
  // packed uint64, so the kernel writes straight into the vector storage.
  static_assert(sizeof(TupleId) == sizeof(uint64_t));
  static_assert(std::is_trivially_copyable_v<TupleId>);
  out->resize(count_);
  if (count_ == 0) return;
  simd::DecodeDeltaBlock(encoded_.data(), encoded_.size(), count_,
                         reinterpret_cast<uint64_t*>(out->data()));
}

std::vector<TupleId> MergeSortedUnique(
    std::vector<std::vector<TupleId>> runs) {
  if (runs.empty()) return {};
  if (runs.size() == 1) return std::move(runs[0]);

  size_t total = 0;
  for (const auto& run : runs) total += run.size();
  std::vector<TupleId> out;
  out.reserve(total);

  if (runs.size() == 2) {  // common case: binary merge, no heap
    const auto& a = runs[0];
    const auto& b = runs[1];
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      const TupleId next = a[i] < b[j] ? a[i] : b[j];
      if (a[i] == next) ++i;
      if (j < b.size() && b[j] == next) ++j;
      if (out.empty() || out.back() != next) out.push_back(next);
    }
    for (; i < a.size(); ++i) {
      if (out.empty() || out.back() != a[i]) out.push_back(a[i]);
    }
    for (; j < b.size(); ++j) {
      if (out.empty() || out.back() != b[j]) out.push_back(b[j]);
    }
    return out;
  }

  // (run index, position); min-heap on the head id of each run.
  using Head = std::pair<size_t, size_t>;
  auto greater = [&runs](const Head& x, const Head& y) {
    return runs[y.first][y.second] < runs[x.first][x.second];
  };
  std::priority_queue<Head, std::vector<Head>, decltype(greater)> heap(
      greater);
  for (size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].empty()) heap.push({r, 0});
  }
  while (!heap.empty()) {
    const Head head = heap.top();
    heap.pop();
    const TupleId id = runs[head.first][head.second];
    if (out.empty() || out.back() != id) out.push_back(id);
    if (head.second + 1 < runs[head.first].size()) {
      heap.push({head.first, head.second + 1});
    }
  }
  return out;
}

void MergeSortedUniqueInto(PostingScratch* scratch,
                           std::vector<TupleId>* out) {
  std::vector<std::vector<TupleId>>& runs = scratch->runs;
  const size_t n = scratch->runs_used;
  out->clear();
  if (n == 0) return;
  if (n == 1) {
    // Swap instead of copy: the buffers circulate between the scratch
    // pool and the output, so capacity is never re-grown either way.
    out->swap(runs[0]);
    return;
  }

  size_t total = 0;
  for (size_t r = 0; r < n; ++r) total += runs[r].size();
  out->reserve(total);

  if (n == 2) {  // common case: binary merge, no heap
    const std::vector<TupleId>& a = runs[0];
    const std::vector<TupleId>& b = runs[1];
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      const TupleId next = a[i] < b[j] ? a[i] : b[j];
      if (a[i] == next) ++i;
      if (j < b.size() && b[j] == next) ++j;
      if (out->empty() || out->back() != next) out->push_back(next);
    }
    for (; i < a.size(); ++i) {
      if (out->empty() || out->back() != a[i]) out->push_back(a[i]);
    }
    for (; j < b.size(); ++j) {
      if (out->empty() || out->back() != b[j]) out->push_back(b[j]);
    }
    return;
  }

  // k-way merge over the pooled heap buffer — same (run, position) head
  // scheme as MergeSortedUnique, without its per-call priority_queue.
  std::vector<std::pair<size_t, size_t>>& heap = scratch->heap;
  heap.clear();
  for (size_t r = 0; r < n; ++r) {
    if (!runs[r].empty()) heap.push_back({r, 0});
  }
  auto greater = [&runs](const std::pair<size_t, size_t>& x,
                         const std::pair<size_t, size_t>& y) {
    return runs[y.first][y.second] < runs[x.first][x.second];
  };
  std::make_heap(heap.begin(), heap.end(), greater);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    const std::pair<size_t, size_t> head = heap.back();
    const TupleId id = runs[head.first][head.second];
    if (out->empty() || out->back() != id) out->push_back(id);
    if (head.second + 1 < runs[head.first].size()) {
      ++heap.back().second;
      std::push_heap(heap.begin(), heap.end(), greater);
    } else {
      heap.pop_back();
    }
  }
}

size_t PostingList::MemoryBytes() const {
  if (compressed_) return encoded_.capacity();
  return raw_.capacity() * sizeof(TupleId);
}

}  // namespace matcn
