#include "indexing/term_index.h"

#include <algorithm>

#include "indexing/stopwords.h"
#include "indexing/tokenizer.h"

namespace matcn {
namespace {

// Temporary accumulator keyed by (relation, attribute).
struct AttrAccum {
  uint64_t frequency = 0;
  std::vector<TupleId> tuples;  // appended in scan order; sorted at the end
};

uint64_t AttrKey(RelationId rel, uint32_t attr) {
  return (static_cast<uint64_t>(rel) << 32) | attr;
}

}  // namespace

TermIndex TermIndex::Build(const Database& db, TermIndexOptions options) {
  std::unordered_map<std::string, std::unordered_map<uint64_t, AttrAccum>>
      accum;
  for (RelationId r = 0; r < db.num_relations(); ++r) {
    if (!options.relation_mask.empty() &&
        (r >= options.relation_mask.size() || options.relation_mask[r] == 0)) {
      continue;
    }
    const Relation& rel = db.relation(r);
    const RelationSchema& schema = rel.schema();
    for (uint64_t row = 0; row < rel.num_tuples(); ++row) {
      const Tuple& tuple = rel.tuple(row);
      for (uint32_t a = 0; a < schema.num_attributes(); ++a) {
        const Attribute& attr = schema.attribute(a);
        if (attr.type != ValueType::kText || !attr.searchable) continue;
        const std::vector<std::string> tokens =
            Tokenizer::Tokenize(tuple[a].AsText());
        // Count every occurrence for f_{k,i}, but record a tuple id only
        // once per (term, attribute, tuple).
        std::string last_recorded;
        for (const std::string& token : tokens) {
          if (options.skip_stopwords && IsStopword(token)) continue;
          AttrAccum& acc = accum[token][AttrKey(r, a)];
          ++acc.frequency;
          if (acc.tuples.empty() ||
              acc.tuples.back() != TupleId(r, row)) {
            acc.tuples.emplace_back(r, row);
          }
          (void)last_recorded;
        }
      }
    }
  }

  TermIndex index;
  index.options_ = options;
  index.total_tuples_ = db.TotalTuples();
  for (auto& [term, attrs] : accum) {
    std::vector<AttributeOccurrence> list;
    list.reserve(attrs.size());
    std::vector<TupleId> all_tuples;
    for (auto& [key, acc] : attrs) {
      std::sort(acc.tuples.begin(), acc.tuples.end());
      acc.tuples.erase(std::unique(acc.tuples.begin(), acc.tuples.end()),
                       acc.tuples.end());
      all_tuples.insert(all_tuples.end(), acc.tuples.begin(),
                        acc.tuples.end());
      AttributeOccurrence occ;
      occ.relation = static_cast<RelationId>(key >> 32);
      occ.attribute = static_cast<uint32_t>(key & 0xffffffffu);
      occ.frequency = acc.frequency;
      occ.tuples =
          PostingList::Build(std::move(acc.tuples), options.compress_postings);
      list.push_back(std::move(occ));
    }
    // Keep inverted lists deterministically ordered.
    std::sort(list.begin(), list.end(),
              [](const AttributeOccurrence& x, const AttributeOccurrence& y) {
                return std::tie(x.relation, x.attribute) <
                       std::tie(y.relation, y.attribute);
              });
    std::sort(all_tuples.begin(), all_tuples.end());
    all_tuples.erase(std::unique(all_tuples.begin(), all_tuples.end()),
                     all_tuples.end());
    index.doc_freq_[term] = all_tuples.size();
    index.index_[term] = std::move(list);
  }
  return index;
}

const std::vector<AttributeOccurrence>* TermIndex::Lookup(
    const std::string& term) const {
  auto it = index_.find(term);
  if (it == index_.end()) return nullptr;
  return &it->second;
}

std::vector<TupleId> TermIndex::TuplesFor(const std::string& term) const {
  PostingScratch scratch;
  std::vector<TupleId> out;
  TuplesForInto(term, &scratch, &out);
  return out;
}

void TermIndex::TuplesForInto(const std::string& term,
                              PostingScratch* scratch,
                              std::vector<TupleId>* out) const {
  const std::vector<AttributeOccurrence>* list = Lookup(term);
  if (list == nullptr) {
    out->clear();
    return;
  }
  // Each per-attribute decode is already sorted and unique; a k-way merge
  // beats concat + full sort on this TSFind hot path. Both the decode
  // buffers and the merge heap come from the caller's scratch pool.
  scratch->BeginRound();
  for (const AttributeOccurrence& occ : *list) {
    occ.tuples.DecodeInto(scratch->AcquireRun());
  }
  MergeSortedUniqueInto(scratch, out);
}

void TermIndex::ApplyInsert(const Database& db, TupleId id) {
  const Relation& rel = db.relation(id.relation());
  const RelationSchema& schema = rel.schema();
  const Tuple& tuple = rel.tuple(id.row());
  ++total_tuples_;

  // Accumulate per-(term, attribute) occurrence counts for the whole tuple
  // first, then touch each affected posting list exactly once. The naive
  // per-occurrence decode + rebuild was quadratic in a field that repeats
  // a term.
  std::unordered_map<std::string, std::unordered_map<uint32_t, uint64_t>>
      occurrences;
  for (uint32_t a = 0; a < schema.num_attributes(); ++a) {
    const Attribute& attr = schema.attribute(a);
    if (attr.type != ValueType::kText || !attr.searchable) continue;
    for (const std::string& token : Tokenizer::Tokenize(tuple[a].AsText())) {
      if (options_.skip_stopwords && IsStopword(token)) continue;
      ++occurrences[token][a];
    }
  }

  for (const auto& [token, attrs] : occurrences) {
    std::vector<AttributeOccurrence>& list = index_[token];
    for (const auto& [a, count] : attrs) {
      AttributeOccurrence* occ = nullptr;
      for (AttributeOccurrence& candidate : list) {
        if (candidate.relation == id.relation() &&
            candidate.attribute == a) {
          occ = &candidate;
          break;
        }
      }
      if (occ == nullptr) {
        AttributeOccurrence fresh;
        fresh.relation = id.relation();
        fresh.attribute = a;
        // Keep the deterministic (relation, attribute) ordering.
        auto pos = std::lower_bound(
            list.begin(), list.end(), fresh,
            [](const AttributeOccurrence& x, const AttributeOccurrence& y) {
              return std::tie(x.relation, x.attribute) <
                     std::tie(y.relation, y.attribute);
            });
        occ = &*list.insert(pos, std::move(fresh));
      }
      occ->frequency += count;
      std::vector<TupleId> ids = occ->tuples.Decode();
      auto pos = std::lower_bound(ids.begin(), ids.end(), id);
      if (pos == ids.end() || *pos != id) ids.insert(pos, id);
      occ->tuples =
          PostingList::Build(std::move(ids), options_.compress_postings);
    }
    ++doc_freq_[token];  // one new tuple per term, whatever the attrs
  }
}

std::vector<std::string> TermIndex::AllTerms() const {
  std::vector<std::string> terms;
  terms.reserve(index_.size());
  for (const auto& [term, list] : index_) terms.push_back(term);
  std::sort(terms.begin(), terms.end());
  return terms;
}

uint64_t TermIndex::DocumentFrequency(const std::string& term) const {
  auto it = doc_freq_.find(term);
  return it == doc_freq_.end() ? 0 : it->second;
}

size_t TermIndex::PostingMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [term, list] : index_) {
    for (const AttributeOccurrence& occ : list) {
      bytes += occ.tuples.MemoryBytes();
    }
  }
  return bytes;
}

}  // namespace matcn
