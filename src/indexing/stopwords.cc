#include "indexing/stopwords.h"

#include <algorithm>
#include <array>
#include <string_view>

namespace matcn {
namespace {

// Sorted so membership is a binary search; keep alphabetical when editing.
constexpr std::array<std::string_view, 48> kStopwords = {
    "a",    "an",   "and",  "are",  "as",   "at",   "be",   "but",
    "by",   "for",  "from", "had",  "has",  "have", "he",   "her",
    "his",  "if",   "in",   "into", "is",   "it",   "its",  "no",
    "not",  "of",   "on",   "or",   "she",  "so",   "such", "that",
    "the",  "their", "then", "there", "these", "they", "this", "to",
    "was",  "we",   "were", "which", "will", "with", "would", "you",
};

}  // namespace

bool IsStopword(std::string_view term) {
  return std::binary_search(kStopwords.begin(), kStopwords.end(), term);
}

size_t StopwordCount() { return kStopwords.size(); }

}  // namespace matcn
