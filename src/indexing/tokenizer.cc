#include "indexing/tokenizer.h"

#include <cctype>
#include <unordered_set>

namespace matcn {

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : text) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> Tokenizer::UniqueTokens(std::string_view text) {
  std::vector<std::string> tokens = Tokenize(text);
  std::unordered_set<std::string> seen;
  std::vector<std::string> unique;
  unique.reserve(tokens.size());
  for (std::string& t : tokens) {
    if (seen.insert(t).second) unique.push_back(std::move(t));
  }
  return unique;
}

}  // namespace matcn
