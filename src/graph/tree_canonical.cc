#include "graph/tree_canonical.h"

#include <algorithm>
#include <memory_resource>
#include <string_view>

namespace matcn {
namespace {

// The encoding core is written once against pmr containers and an explicit
// memory_resource; the legacy std::string API below runs it on a transient
// buffer resource and copies the answer out. `Adjacency`/`Labels` are
// templates only so both std:: and std::pmr:: containers (which differ in
// allocator type) can feed the same code.

template <typename Adjacency>
std::pmr::vector<int> TreeCentersImpl(const Adjacency& adjacency,
                                      std::pmr::memory_resource* mr) {
  std::pmr::vector<int> current(mr);
  const int n = static_cast<int>(adjacency.size());
  if (n == 0) return current;
  if (n == 1) {
    current.push_back(0);
    return current;
  }
  std::pmr::vector<int> degree(static_cast<size_t>(n), 0, mr);
  for (int i = 0; i < n; ++i) {
    degree[i] = static_cast<int>(adjacency[i].size());
    if (degree[i] <= 1) current.push_back(i);
  }
  int remaining = n;
  std::pmr::vector<int> next(mr);
  while (remaining > 2) {
    next.clear();
    remaining -= static_cast<int>(current.size());
    for (int leaf : current) {
      for (int nbr : adjacency[leaf]) {
        if (--degree[nbr] == 1) next.push_back(nbr);
      }
      degree[leaf] = 0;
    }
    std::swap(current, next);
  }
  std::sort(current.begin(), current.end());
  return current;
}

template <typename Adjacency, typename Labels>
std::pmr::string EncodeRootedImpl(const Adjacency& adjacency,
                                  const Labels& labels, int root,
                                  std::pmr::memory_resource* mr) {
  // Iterative post-order to avoid deep recursion on path-shaped trees.
  struct Frame {
    using allocator_type = std::pmr::polymorphic_allocator<std::byte>;
    int node;
    int parent;
    size_t next_child = 0;
    std::pmr::vector<std::pmr::string> child_encodings;

    Frame(int n, int p, allocator_type alloc)
        : node(n), parent(p), child_encodings(alloc) {}
    Frame(Frame&& o, allocator_type alloc)
        : node(o.node), parent(o.parent), next_child(o.next_child),
          child_encodings(std::move(o.child_encodings), alloc) {}
  };
  std::pmr::vector<Frame> stack(mr);
  stack.emplace_back(root, -1);
  std::pmr::string result(mr);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const auto& nbrs = adjacency[frame.node];
    bool descended = false;
    while (frame.next_child < nbrs.size()) {
      const int child = nbrs[frame.next_child++];
      if (child == frame.parent) continue;
      stack.emplace_back(child, frame.node);
      descended = true;
      break;
    }
    if (descended) continue;
    std::sort(frame.child_encodings.begin(), frame.child_encodings.end());
    std::pmr::string enc(mr);
    enc.append(labels[frame.node].data(), labels[frame.node].size());
    enc += '(';
    for (const std::pmr::string& c : frame.child_encodings) enc += c;
    enc += ')';
    const int parent_depth = static_cast<int>(stack.size()) - 2;
    stack.pop_back();
    if (parent_depth >= 0) {
      stack[parent_depth].child_encodings.push_back(std::move(enc));
    } else {
      result = std::move(enc);
    }
  }
  return result;
}

template <typename Adjacency, typename Labels>
std::pmr::string CanonicalTreeEncodingImpl(const Adjacency& adjacency,
                                           const Labels& labels,
                                           std::pmr::memory_resource* mr) {
  std::pmr::string best(mr);
  if (adjacency.empty()) return best;
  const std::pmr::vector<int> centers = TreeCentersImpl(adjacency, mr);
  for (size_t i = 0; i < centers.size(); ++i) {
    std::pmr::string enc = EncodeRootedImpl(adjacency, labels, centers[i], mr);
    if (i == 0 || enc < best) best = std::move(enc);
  }
  return best;
}

}  // namespace

std::vector<int> TreeCenters(const std::vector<std::vector<int>>& adjacency) {
  const std::pmr::vector<int> centers =
      TreeCentersImpl(adjacency, std::pmr::get_default_resource());
  return std::vector<int>(centers.begin(), centers.end());
}

std::string CanonicalTreeEncoding(
    const std::vector<std::vector<int>>& adjacency,
    const std::vector<std::string>& labels) {
  std::pmr::monotonic_buffer_resource mr;
  const std::pmr::string best = CanonicalTreeEncodingImpl(adjacency, labels, &mr);
  return std::string(best.data(), best.size());
}

std::pmr::string CanonicalTreeEncodingPmr(
    const std::pmr::vector<std::pmr::vector<int>>& adjacency,
    const std::pmr::vector<std::pmr::string>& labels,
    std::pmr::memory_resource* mr) {
  return CanonicalTreeEncodingImpl(adjacency, labels, mr);
}

}  // namespace matcn
