#include "graph/tree_canonical.h"

#include <algorithm>
#include <functional>

namespace matcn {

std::vector<int> TreeCenters(const std::vector<std::vector<int>>& adjacency) {
  const int n = static_cast<int>(adjacency.size());
  if (n == 0) return {};
  if (n == 1) return {0};
  std::vector<int> degree(n);
  std::vector<int> frontier;
  for (int i = 0; i < n; ++i) {
    degree[i] = static_cast<int>(adjacency[i].size());
    if (degree[i] <= 1) frontier.push_back(i);
  }
  int remaining = n;
  std::vector<int> current = frontier;
  while (remaining > 2) {
    std::vector<int> next;
    remaining -= static_cast<int>(current.size());
    for (int leaf : current) {
      for (int nbr : adjacency[leaf]) {
        if (--degree[nbr] == 1) next.push_back(nbr);
      }
      degree[leaf] = 0;
    }
    current = std::move(next);
  }
  std::sort(current.begin(), current.end());
  return current;
}

namespace {

std::string EncodeRooted(const std::vector<std::vector<int>>& adjacency,
                         const std::vector<std::string>& labels, int root) {
  // Iterative post-order to avoid deep recursion on path-shaped trees.
  struct Frame {
    int node;
    int parent;
    size_t next_child = 0;
    std::vector<std::string> child_encodings;
  };
  std::vector<Frame> stack;
  stack.push_back({root, -1, 0, {}});
  std::string result;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const std::vector<int>& nbrs = adjacency[frame.node];
    bool descended = false;
    while (frame.next_child < nbrs.size()) {
      const int child = nbrs[frame.next_child++];
      if (child == frame.parent) continue;
      stack.push_back({child, frame.node, 0, {}});
      descended = true;
      break;
    }
    if (descended) continue;
    std::sort(frame.child_encodings.begin(), frame.child_encodings.end());
    std::string enc = labels[frame.node];
    enc += '(';
    for (const std::string& c : frame.child_encodings) enc += c;
    enc += ')';
    const int parent_depth = static_cast<int>(stack.size()) - 2;
    stack.pop_back();
    if (parent_depth >= 0) {
      stack[parent_depth].child_encodings.push_back(std::move(enc));
    } else {
      result = std::move(enc);
    }
  }
  return result;
}

}  // namespace

std::string CanonicalTreeEncoding(
    const std::vector<std::vector<int>>& adjacency,
    const std::vector<std::string>& labels) {
  if (adjacency.empty()) return "";
  std::vector<int> centers = TreeCenters(adjacency);
  std::string best;
  for (size_t i = 0; i < centers.size(); ++i) {
    std::string enc = EncodeRooted(adjacency, labels, centers[i]);
    if (i == 0 || enc < best) best = std::move(enc);
  }
  return best;
}

}  // namespace matcn
