#ifndef MATCN_GRAPH_TREE_CANONICAL_H_
#define MATCN_GRAPH_TREE_CANONICAL_H_

#include <memory_resource>
#include <string>
#include <vector>

namespace matcn {

/// Canonical encoding of an unrooted tree with string node labels, via the
/// AHU algorithm rooted at the tree's center(s). Two labeled trees are
/// isomorphic iff their encodings are byte-equal. CN generation uses this
/// to deduplicate candidate networks (the `J' ∉ F` test of SingleCN and
/// CNGen's duplicate elimination, cf. Markowetz et al. [19]).
///
/// `adjacency[i]` lists the neighbors of node i; `labels[i]` is node i's
/// label. The graph must be a tree (connected, |E| = n-1); an empty tree
/// encodes as "". Complexity O(n log n) per call.
std::string CanonicalTreeEncoding(
    const std::vector<std::vector<int>>& adjacency,
    const std::vector<std::string>& labels);

/// Allocation-controlled variant for the CN generation hot path: every
/// byte the encoding touches (centers, post-order frames, child encodings,
/// the result) comes from `mr`, typically a per-worker bump arena that is
/// reset between expansions. Produces byte-identical encodings to
/// CanonicalTreeEncoding.
std::pmr::string CanonicalTreeEncodingPmr(
    const std::pmr::vector<std::pmr::vector<int>>& adjacency,
    const std::pmr::vector<std::pmr::string>& labels,
    std::pmr::memory_resource* mr);

/// The 1 or 2 center node indexes of the tree (nodes minimizing
/// eccentricity), found by iteratively peeling leaves. Exposed for tests.
std::vector<int> TreeCenters(const std::vector<std::vector<int>>& adjacency);

}  // namespace matcn

#endif  // MATCN_GRAPH_TREE_CANONICAL_H_
