#include "graph/schema_graph.h"

#include <algorithm>

namespace matcn {

uint64_t SchemaGraph::Key(RelationId a, RelationId b) {
  RelationId lo = std::min(a, b);
  RelationId hi = std::max(a, b);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

SchemaGraph SchemaGraph::Build(const DatabaseSchema& schema) {
  SchemaGraph g;
  g.adjacency_.resize(schema.num_relations());
  for (const ForeignKey& fk : schema.foreign_keys()) {
    const RelationId from = *schema.RelationIdByName(fk.from_relation);
    const RelationId to = *schema.RelationIdByName(fk.to_relation);
    if (from == to) {
      ++g.collapsed_;  // self-loops are excluded per DISCOVER's assumptions
      continue;
    }
    const uint64_t key = Key(from, to);
    if (g.edges_.contains(key)) {
      ++g.collapsed_;  // parallel edge: keep the first RIC only
      continue;
    }
    SchemaEdge edge;
    edge.holder = from;
    edge.holder_attribute = static_cast<uint32_t>(
        *schema.relation(from).AttributeIndex(fk.from_attribute));
    edge.referenced = to;
    edge.referenced_attribute = static_cast<uint32_t>(
        *schema.relation(to).AttributeIndex(fk.to_attribute));
    g.edges_.emplace(key, edge);
    g.adjacency_[from].push_back(to);
    g.adjacency_[to].push_back(from);
  }
  for (std::vector<RelationId>& nbrs : g.adjacency_) {
    std::sort(nbrs.begin(), nbrs.end());
  }
  return g;
}

bool SchemaGraph::HasEdge(RelationId a, RelationId b) const {
  return edges_.contains(Key(a, b));
}

const SchemaEdge* SchemaGraph::Edge(RelationId a, RelationId b) const {
  auto it = edges_.find(Key(a, b));
  return it == edges_.end() ? nullptr : &it->second;
}

bool SchemaGraph::References(RelationId a, RelationId b) const {
  const SchemaEdge* edge = Edge(a, b);
  return edge != nullptr && edge->holder == a;
}

}  // namespace matcn
