#ifndef MATCN_GRAPH_SCHEMA_GRAPH_H_
#define MATCN_GRAPH_SCHEMA_GRAPH_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple_id.h"

namespace matcn {

/// One undirected schema edge plus the direction and attributes of the
/// referential integrity constraint that induced it. `holder` is the
/// relation that stores the foreign key (the edge's direction matters only
/// for the soundness rule of Definition 7 and for emitting join
/// conditions).
struct SchemaEdge {
  RelationId holder = 0;          // relation owning the FK column
  uint32_t holder_attribute = 0;  // FK column index in `holder`
  RelationId referenced = 0;      // relation owning the referenced key
  uint32_t referenced_attribute = 0;
};

/// The undirected schema graph G_u of the paper: vertices are relations,
/// edges are RICs. Following DISCOVER's assumptions (paper footnote 1)
/// there are no self-loops and no parallel edges; when a schema declares
/// several FKs between the same pair of relations, the first one defines
/// the edge and the rest are counted in `num_collapsed_edges()`.
class SchemaGraph {
 public:
  static SchemaGraph Build(const DatabaseSchema& schema);

  size_t num_relations() const { return adjacency_.size(); }
  size_t num_edges() const { return edges_.size(); }
  size_t num_collapsed_edges() const { return collapsed_; }

  /// Sorted distinct neighbor list of `r`.
  const std::vector<RelationId>& Neighbors(RelationId r) const {
    return adjacency_[r];
  }

  bool HasEdge(RelationId a, RelationId b) const;

  /// Edge metadata for an existing edge {a, b}; nullptr if absent.
  const SchemaEdge* Edge(RelationId a, RelationId b) const;

  /// True iff the edge {a, b} exists and `a` holds the foreign key (i.e.
  /// `a` references `b`). Exactly one orientation is true per edge.
  bool References(RelationId a, RelationId b) const;

 private:
  static uint64_t Key(RelationId a, RelationId b);

  std::vector<std::vector<RelationId>> adjacency_;
  std::unordered_map<uint64_t, SchemaEdge> edges_;
  size_t collapsed_ = 0;
};

}  // namespace matcn

#endif  // MATCN_GRAPH_SCHEMA_GRAPH_H_
