# Empty compiler generated dependencies file for bench_fig10_generation_time.
# This may be replaced when dependencies are built.
