# Empty compiler generated dependencies file for bench_fig6_cn_counts.
# This may be replaced when dependencies are built.
