file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cn_counts.dir/bench_fig6_cn_counts.cc.o"
  "CMakeFiles/bench_fig6_cn_counts.dir/bench_fig6_cn_counts.cc.o.d"
  "bench_fig6_cn_counts"
  "bench_fig6_cn_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cn_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
