file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_8_quality_cw.dir/bench_fig7_8_quality_cw.cc.o"
  "CMakeFiles/bench_fig7_8_quality_cw.dir/bench_fig7_8_quality_cw.cc.o.d"
  "bench_fig7_8_quality_cw"
  "bench_fig7_8_quality_cw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_8_quality_cw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
