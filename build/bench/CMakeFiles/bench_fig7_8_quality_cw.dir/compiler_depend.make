# Empty compiler generated dependencies file for bench_fig7_8_quality_cw.
# This may be replaced when dependencies are built.
