file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_matches.dir/bench_table5_matches.cc.o"
  "CMakeFiles/bench_table5_matches.dir/bench_table5_matches.cc.o.d"
  "bench_table5_matches"
  "bench_table5_matches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_matches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
