file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_qmgen.dir/bench_ablation_qmgen.cc.o"
  "CMakeFiles/bench_ablation_qmgen.dir/bench_ablation_qmgen.cc.o.d"
  "bench_ablation_qmgen"
  "bench_ablation_qmgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_qmgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
