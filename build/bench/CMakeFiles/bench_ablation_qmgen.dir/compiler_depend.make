# Empty compiler generated dependencies file for bench_ablation_qmgen.
# This may be replaced when dependencies are built.
