file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_quality_spark_inex.dir/bench_fig9_quality_spark_inex.cc.o"
  "CMakeFiles/bench_fig9_quality_spark_inex.dir/bench_fig9_quality_spark_inex.cc.o.d"
  "bench_fig9_quality_spark_inex"
  "bench_fig9_quality_spark_inex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_quality_spark_inex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
