# Empty compiler generated dependencies file for bench_fig9_quality_spark_inex.
# This may be replaced when dependencies are built.
