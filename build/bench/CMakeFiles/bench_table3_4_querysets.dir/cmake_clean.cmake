file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_4_querysets.dir/bench_table3_4_querysets.cc.o"
  "CMakeFiles/bench_table3_4_querysets.dir/bench_table3_4_querysets.cc.o.d"
  "bench_table3_4_querysets"
  "bench_table3_4_querysets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_4_querysets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
