# Empty compiler generated dependencies file for core_tuple_set_graph_test.
# This may be replaced when dependencies are built.
