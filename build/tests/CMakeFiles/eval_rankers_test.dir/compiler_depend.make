# Empty compiler generated dependencies file for eval_rankers_test.
# This may be replaced when dependencies are built.
