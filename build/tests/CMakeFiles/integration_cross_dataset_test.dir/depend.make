# Empty dependencies file for integration_cross_dataset_test.
# This may be replaced when dependencies are built.
