file(REMOVE_RECURSE
  "CMakeFiles/datagraph_datagraph_test.dir/datagraph/datagraph_test.cc.o"
  "CMakeFiles/datagraph_datagraph_test.dir/datagraph/datagraph_test.cc.o.d"
  "datagraph_datagraph_test"
  "datagraph_datagraph_test.pdb"
  "datagraph_datagraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagraph_datagraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
