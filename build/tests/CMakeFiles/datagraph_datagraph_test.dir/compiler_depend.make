# Empty compiler generated dependencies file for datagraph_datagraph_test.
# This may be replaced when dependencies are built.
