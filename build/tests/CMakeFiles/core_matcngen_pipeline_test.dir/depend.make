# Empty dependencies file for core_matcngen_pipeline_test.
# This may be replaced when dependencies are built.
