file(REMOVE_RECURSE
  "CMakeFiles/core_matcngen_pipeline_test.dir/core/matcngen_pipeline_test.cc.o"
  "CMakeFiles/core_matcngen_pipeline_test.dir/core/matcngen_pipeline_test.cc.o.d"
  "core_matcngen_pipeline_test"
  "core_matcngen_pipeline_test.pdb"
  "core_matcngen_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_matcngen_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
