file(REMOVE_RECURSE
  "CMakeFiles/datasets_workload_io_test.dir/datasets/workload_io_test.cc.o"
  "CMakeFiles/datasets_workload_io_test.dir/datasets/workload_io_test.cc.o.d"
  "datasets_workload_io_test"
  "datasets_workload_io_test.pdb"
  "datasets_workload_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datasets_workload_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
