file(REMOVE_RECURSE
  "CMakeFiles/datasets_workload_test.dir/datasets/workload_test.cc.o"
  "CMakeFiles/datasets_workload_test.dir/datasets/workload_test.cc.o.d"
  "datasets_workload_test"
  "datasets_workload_test.pdb"
  "datasets_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datasets_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
