# Empty compiler generated dependencies file for exec_executor_oracle_test.
# This may be replaced when dependencies are built.
