file(REMOVE_RECURSE
  "CMakeFiles/exec_executor_oracle_test.dir/exec/executor_oracle_test.cc.o"
  "CMakeFiles/exec_executor_oracle_test.dir/exec/executor_oracle_test.cc.o.d"
  "exec_executor_oracle_test"
  "exec_executor_oracle_test.pdb"
  "exec_executor_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_executor_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
