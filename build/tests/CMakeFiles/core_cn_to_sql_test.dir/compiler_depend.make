# Empty compiler generated dependencies file for core_cn_to_sql_test.
# This may be replaced when dependencies are built.
