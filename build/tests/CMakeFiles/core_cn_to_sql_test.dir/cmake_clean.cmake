file(REMOVE_RECURSE
  "CMakeFiles/core_cn_to_sql_test.dir/core/cn_to_sql_test.cc.o"
  "CMakeFiles/core_cn_to_sql_test.dir/core/cn_to_sql_test.cc.o.d"
  "core_cn_to_sql_test"
  "core_cn_to_sql_test.pdb"
  "core_cn_to_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_cn_to_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
