file(REMOVE_RECURSE
  "CMakeFiles/matcn_test_fixtures.dir/fixtures/imdb_fixture.cc.o"
  "CMakeFiles/matcn_test_fixtures.dir/fixtures/imdb_fixture.cc.o.d"
  "libmatcn_test_fixtures.a"
  "libmatcn_test_fixtures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcn_test_fixtures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
