file(REMOVE_RECURSE
  "libmatcn_test_fixtures.a"
)
