# Empty compiler generated dependencies file for matcn_test_fixtures.
# This may be replaced when dependencies are built.
