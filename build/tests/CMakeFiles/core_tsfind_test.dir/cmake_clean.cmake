file(REMOVE_RECURSE
  "CMakeFiles/core_tsfind_test.dir/core/tsfind_test.cc.o"
  "CMakeFiles/core_tsfind_test.dir/core/tsfind_test.cc.o.d"
  "core_tsfind_test"
  "core_tsfind_test.pdb"
  "core_tsfind_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tsfind_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
