# Empty dependencies file for core_tsfind_test.
# This may be replaced when dependencies are built.
