file(REMOVE_RECURSE
  "CMakeFiles/baseline_cngen_test.dir/baseline/cngen_test.cc.o"
  "CMakeFiles/baseline_cngen_test.dir/baseline/cngen_test.cc.o.d"
  "baseline_cngen_test"
  "baseline_cngen_test.pdb"
  "baseline_cngen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_cngen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
