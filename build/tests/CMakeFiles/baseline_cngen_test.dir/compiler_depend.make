# Empty compiler generated dependencies file for baseline_cngen_test.
# This may be replaced when dependencies are built.
