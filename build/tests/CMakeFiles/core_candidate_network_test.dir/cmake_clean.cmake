file(REMOVE_RECURSE
  "CMakeFiles/core_candidate_network_test.dir/core/candidate_network_test.cc.o"
  "CMakeFiles/core_candidate_network_test.dir/core/candidate_network_test.cc.o.d"
  "core_candidate_network_test"
  "core_candidate_network_test.pdb"
  "core_candidate_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_candidate_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
