# Empty compiler generated dependencies file for core_candidate_network_test.
# This may be replaced when dependencies are built.
