
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/indexing/term_index_update_test.cc" "tests/CMakeFiles/indexing_term_index_update_test.dir/indexing/term_index_update_test.cc.o" "gcc" "tests/CMakeFiles/indexing_term_index_update_test.dir/indexing/term_index_update_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/matcn_test_fixtures.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/matcn_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/datagraph/CMakeFiles/matcn_datagraph.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/matcn_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/matcn_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/matcn_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/matcn_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/matcn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/indexing/CMakeFiles/matcn_indexing.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/matcn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/matcn_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/matcn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
