file(REMOVE_RECURSE
  "CMakeFiles/indexing_term_index_update_test.dir/indexing/term_index_update_test.cc.o"
  "CMakeFiles/indexing_term_index_update_test.dir/indexing/term_index_update_test.cc.o.d"
  "indexing_term_index_update_test"
  "indexing_term_index_update_test.pdb"
  "indexing_term_index_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexing_term_index_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
