# Empty compiler generated dependencies file for indexing_term_index_update_test.
# This may be replaced when dependencies are built.
