# Empty compiler generated dependencies file for core_keyword_query_test.
# This may be replaced when dependencies are built.
