# Empty dependencies file for eval_rankers_property_test.
# This may be replaced when dependencies are built.
