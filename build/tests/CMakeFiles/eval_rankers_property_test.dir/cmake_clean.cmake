file(REMOVE_RECURSE
  "CMakeFiles/eval_rankers_property_test.dir/eval/rankers_property_test.cc.o"
  "CMakeFiles/eval_rankers_property_test.dir/eval/rankers_property_test.cc.o.d"
  "eval_rankers_property_test"
  "eval_rankers_property_test.pdb"
  "eval_rankers_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_rankers_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
