# Empty dependencies file for core_single_cn_test.
# This may be replaced when dependencies are built.
