file(REMOVE_RECURSE
  "CMakeFiles/core_single_cn_test.dir/core/single_cn_test.cc.o"
  "CMakeFiles/core_single_cn_test.dir/core/single_cn_test.cc.o.d"
  "core_single_cn_test"
  "core_single_cn_test.pdb"
  "core_single_cn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_single_cn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
