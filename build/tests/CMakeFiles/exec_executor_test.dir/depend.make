# Empty dependencies file for exec_executor_test.
# This may be replaced when dependencies are built.
