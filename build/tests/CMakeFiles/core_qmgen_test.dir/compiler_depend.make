# Empty compiler generated dependencies file for core_qmgen_test.
# This may be replaced when dependencies are built.
