file(REMOVE_RECURSE
  "CMakeFiles/core_qmgen_test.dir/core/qmgen_test.cc.o"
  "CMakeFiles/core_qmgen_test.dir/core/qmgen_test.cc.o.d"
  "core_qmgen_test"
  "core_qmgen_test.pdb"
  "core_qmgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_qmgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
