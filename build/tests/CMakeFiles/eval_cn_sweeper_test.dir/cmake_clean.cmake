file(REMOVE_RECURSE
  "CMakeFiles/eval_cn_sweeper_test.dir/eval/cn_sweeper_test.cc.o"
  "CMakeFiles/eval_cn_sweeper_test.dir/eval/cn_sweeper_test.cc.o.d"
  "eval_cn_sweeper_test"
  "eval_cn_sweeper_test.pdb"
  "eval_cn_sweeper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_cn_sweeper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
