# Empty dependencies file for eval_cn_sweeper_test.
# This may be replaced when dependencies are built.
