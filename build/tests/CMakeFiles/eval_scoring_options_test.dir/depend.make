# Empty dependencies file for eval_scoring_options_test.
# This may be replaced when dependencies are built.
