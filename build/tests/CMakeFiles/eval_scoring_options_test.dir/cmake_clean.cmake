file(REMOVE_RECURSE
  "CMakeFiles/eval_scoring_options_test.dir/eval/scoring_options_test.cc.o"
  "CMakeFiles/eval_scoring_options_test.dir/eval/scoring_options_test.cc.o.d"
  "eval_scoring_options_test"
  "eval_scoring_options_test.pdb"
  "eval_scoring_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_scoring_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
