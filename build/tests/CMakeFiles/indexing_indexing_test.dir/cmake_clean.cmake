file(REMOVE_RECURSE
  "CMakeFiles/indexing_indexing_test.dir/indexing/indexing_test.cc.o"
  "CMakeFiles/indexing_indexing_test.dir/indexing/indexing_test.cc.o.d"
  "indexing_indexing_test"
  "indexing_indexing_test.pdb"
  "indexing_indexing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexing_indexing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
