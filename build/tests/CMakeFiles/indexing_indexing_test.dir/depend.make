# Empty dependencies file for indexing_indexing_test.
# This may be replaced when dependencies are built.
