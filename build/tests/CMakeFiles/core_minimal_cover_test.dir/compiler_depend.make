# Empty compiler generated dependencies file for core_minimal_cover_test.
# This may be replaced when dependencies are built.
