file(REMOVE_RECURSE
  "CMakeFiles/core_minimal_cover_test.dir/core/minimal_cover_test.cc.o"
  "CMakeFiles/core_minimal_cover_test.dir/core/minimal_cover_test.cc.o.d"
  "core_minimal_cover_test"
  "core_minimal_cover_test.pdb"
  "core_minimal_cover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_minimal_cover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
