# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart_custom_query "/root/repo/build/examples/quickstart" "russell" "gladiator")
set_tests_properties(example_quickstart_custom_query PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_movie_search "/root/repo/build/examples/movie_search" "denzel gangster" "3")
set_tests_properties(example_movie_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sql_export "/root/repo/build/examples/sql_export" "lisbon economy" "2")
set_tests_properties(example_sql_export PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scalability_demo "/root/repo/build/examples/scalability_demo" "4")
set_tests_properties(example_scalability_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matcn_ctl "sh" "-c" "/root/repo/build/examples/matcn_ctl build imdb /root/repo/build/examples/ctl_smoke 0.05 && /root/repo/build/examples/matcn_ctl info /root/repo/build/examples/ctl_smoke && /root/repo/build/examples/matcn_ctl query /root/repo/build/examples/ctl_smoke denzel")
set_tests_properties(example_matcn_ctl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matcn_shell "sh" "-c" "printf '.schema\\n.stats\\ndenzel gangster\\n.cns denzel\\n.sql gangster\\n.matches denzel\\n.topk 3\\n.quit\\n' | /root/repo/build/examples/matcn_shell imdb 0.05")
set_tests_properties(example_matcn_shell PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
