# Empty compiler generated dependencies file for scalability_demo.
# This may be replaced when dependencies are built.
