file(REMOVE_RECURSE
  "CMakeFiles/scalability_demo.dir/scalability_demo.cpp.o"
  "CMakeFiles/scalability_demo.dir/scalability_demo.cpp.o.d"
  "scalability_demo"
  "scalability_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
