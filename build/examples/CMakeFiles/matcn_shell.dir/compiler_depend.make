# Empty compiler generated dependencies file for matcn_shell.
# This may be replaced when dependencies are built.
