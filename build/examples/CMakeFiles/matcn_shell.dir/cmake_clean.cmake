file(REMOVE_RECURSE
  "CMakeFiles/matcn_shell.dir/matcn_shell.cpp.o"
  "CMakeFiles/matcn_shell.dir/matcn_shell.cpp.o.d"
  "matcn_shell"
  "matcn_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcn_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
