# Empty dependencies file for sql_export.
# This may be replaced when dependencies are built.
