file(REMOVE_RECURSE
  "CMakeFiles/matcn_ctl.dir/matcn_ctl.cpp.o"
  "CMakeFiles/matcn_ctl.dir/matcn_ctl.cpp.o.d"
  "matcn_ctl"
  "matcn_ctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcn_ctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
