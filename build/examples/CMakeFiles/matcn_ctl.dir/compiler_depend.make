# Empty compiler generated dependencies file for matcn_ctl.
# This may be replaced when dependencies are built.
