file(REMOVE_RECURSE
  "CMakeFiles/matcn_eval.dir/budgeted_ranker.cc.o"
  "CMakeFiles/matcn_eval.dir/budgeted_ranker.cc.o.d"
  "CMakeFiles/matcn_eval.dir/cn_ranker.cc.o"
  "CMakeFiles/matcn_eval.dir/cn_ranker.cc.o.d"
  "CMakeFiles/matcn_eval.dir/cn_sweeper.cc.o"
  "CMakeFiles/matcn_eval.dir/cn_sweeper.cc.o.d"
  "CMakeFiles/matcn_eval.dir/hybrid_ranker.cc.o"
  "CMakeFiles/matcn_eval.dir/hybrid_ranker.cc.o.d"
  "CMakeFiles/matcn_eval.dir/naive_ranker.cc.o"
  "CMakeFiles/matcn_eval.dir/naive_ranker.cc.o.d"
  "CMakeFiles/matcn_eval.dir/pipelined_ranker.cc.o"
  "CMakeFiles/matcn_eval.dir/pipelined_ranker.cc.o.d"
  "CMakeFiles/matcn_eval.dir/ranker.cc.o"
  "CMakeFiles/matcn_eval.dir/ranker.cc.o.d"
  "CMakeFiles/matcn_eval.dir/scorer.cc.o"
  "CMakeFiles/matcn_eval.dir/scorer.cc.o.d"
  "CMakeFiles/matcn_eval.dir/skyline_ranker.cc.o"
  "CMakeFiles/matcn_eval.dir/skyline_ranker.cc.o.d"
  "CMakeFiles/matcn_eval.dir/sparse_ranker.cc.o"
  "CMakeFiles/matcn_eval.dir/sparse_ranker.cc.o.d"
  "libmatcn_eval.a"
  "libmatcn_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcn_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
