
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/budgeted_ranker.cc" "src/eval/CMakeFiles/matcn_eval.dir/budgeted_ranker.cc.o" "gcc" "src/eval/CMakeFiles/matcn_eval.dir/budgeted_ranker.cc.o.d"
  "/root/repo/src/eval/cn_ranker.cc" "src/eval/CMakeFiles/matcn_eval.dir/cn_ranker.cc.o" "gcc" "src/eval/CMakeFiles/matcn_eval.dir/cn_ranker.cc.o.d"
  "/root/repo/src/eval/cn_sweeper.cc" "src/eval/CMakeFiles/matcn_eval.dir/cn_sweeper.cc.o" "gcc" "src/eval/CMakeFiles/matcn_eval.dir/cn_sweeper.cc.o.d"
  "/root/repo/src/eval/hybrid_ranker.cc" "src/eval/CMakeFiles/matcn_eval.dir/hybrid_ranker.cc.o" "gcc" "src/eval/CMakeFiles/matcn_eval.dir/hybrid_ranker.cc.o.d"
  "/root/repo/src/eval/naive_ranker.cc" "src/eval/CMakeFiles/matcn_eval.dir/naive_ranker.cc.o" "gcc" "src/eval/CMakeFiles/matcn_eval.dir/naive_ranker.cc.o.d"
  "/root/repo/src/eval/pipelined_ranker.cc" "src/eval/CMakeFiles/matcn_eval.dir/pipelined_ranker.cc.o" "gcc" "src/eval/CMakeFiles/matcn_eval.dir/pipelined_ranker.cc.o.d"
  "/root/repo/src/eval/ranker.cc" "src/eval/CMakeFiles/matcn_eval.dir/ranker.cc.o" "gcc" "src/eval/CMakeFiles/matcn_eval.dir/ranker.cc.o.d"
  "/root/repo/src/eval/scorer.cc" "src/eval/CMakeFiles/matcn_eval.dir/scorer.cc.o" "gcc" "src/eval/CMakeFiles/matcn_eval.dir/scorer.cc.o.d"
  "/root/repo/src/eval/skyline_ranker.cc" "src/eval/CMakeFiles/matcn_eval.dir/skyline_ranker.cc.o" "gcc" "src/eval/CMakeFiles/matcn_eval.dir/skyline_ranker.cc.o.d"
  "/root/repo/src/eval/sparse_ranker.cc" "src/eval/CMakeFiles/matcn_eval.dir/sparse_ranker.cc.o" "gcc" "src/eval/CMakeFiles/matcn_eval.dir/sparse_ranker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/matcn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/matcn_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/indexing/CMakeFiles/matcn_indexing.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/matcn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/matcn_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/matcn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
