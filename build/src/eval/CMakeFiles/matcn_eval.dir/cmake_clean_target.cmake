file(REMOVE_RECURSE
  "libmatcn_eval.a"
)
