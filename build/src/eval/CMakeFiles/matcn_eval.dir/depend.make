# Empty dependencies file for matcn_eval.
# This may be replaced when dependencies are built.
