# Empty dependencies file for matcn_storage.
# This may be replaced when dependencies are built.
