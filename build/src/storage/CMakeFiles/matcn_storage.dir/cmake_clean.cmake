file(REMOVE_RECURSE
  "CMakeFiles/matcn_storage.dir/database.cc.o"
  "CMakeFiles/matcn_storage.dir/database.cc.o.d"
  "CMakeFiles/matcn_storage.dir/disk.cc.o"
  "CMakeFiles/matcn_storage.dir/disk.cc.o.d"
  "CMakeFiles/matcn_storage.dir/relation.cc.o"
  "CMakeFiles/matcn_storage.dir/relation.cc.o.d"
  "CMakeFiles/matcn_storage.dir/schema.cc.o"
  "CMakeFiles/matcn_storage.dir/schema.cc.o.d"
  "libmatcn_storage.a"
  "libmatcn_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcn_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
