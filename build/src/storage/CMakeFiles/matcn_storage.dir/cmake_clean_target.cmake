file(REMOVE_RECURSE
  "libmatcn_storage.a"
)
