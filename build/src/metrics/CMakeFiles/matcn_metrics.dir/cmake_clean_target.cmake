file(REMOVE_RECURSE
  "libmatcn_metrics.a"
)
