file(REMOVE_RECURSE
  "CMakeFiles/matcn_metrics.dir/metrics.cc.o"
  "CMakeFiles/matcn_metrics.dir/metrics.cc.o.d"
  "libmatcn_metrics.a"
  "libmatcn_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcn_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
