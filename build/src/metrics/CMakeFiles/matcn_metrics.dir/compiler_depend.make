# Empty compiler generated dependencies file for matcn_metrics.
# This may be replaced when dependencies are built.
