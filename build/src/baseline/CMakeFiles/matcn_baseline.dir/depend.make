# Empty dependencies file for matcn_baseline.
# This may be replaced when dependencies are built.
