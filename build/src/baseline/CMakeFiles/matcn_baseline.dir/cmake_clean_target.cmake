file(REMOVE_RECURSE
  "libmatcn_baseline.a"
)
