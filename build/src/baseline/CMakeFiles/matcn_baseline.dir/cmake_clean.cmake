file(REMOVE_RECURSE
  "CMakeFiles/matcn_baseline.dir/cngen.cc.o"
  "CMakeFiles/matcn_baseline.dir/cngen.cc.o.d"
  "libmatcn_baseline.a"
  "libmatcn_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcn_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
