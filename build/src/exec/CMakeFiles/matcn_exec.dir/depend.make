# Empty dependencies file for matcn_exec.
# This may be replaced when dependencies are built.
