file(REMOVE_RECURSE
  "CMakeFiles/matcn_exec.dir/executor.cc.o"
  "CMakeFiles/matcn_exec.dir/executor.cc.o.d"
  "CMakeFiles/matcn_exec.dir/jnt.cc.o"
  "CMakeFiles/matcn_exec.dir/jnt.cc.o.d"
  "CMakeFiles/matcn_exec.dir/join_index.cc.o"
  "CMakeFiles/matcn_exec.dir/join_index.cc.o.d"
  "libmatcn_exec.a"
  "libmatcn_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcn_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
