file(REMOVE_RECURSE
  "libmatcn_exec.a"
)
