file(REMOVE_RECURSE
  "libmatcn_indexing.a"
)
