
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/indexing/postings.cc" "src/indexing/CMakeFiles/matcn_indexing.dir/postings.cc.o" "gcc" "src/indexing/CMakeFiles/matcn_indexing.dir/postings.cc.o.d"
  "/root/repo/src/indexing/stopwords.cc" "src/indexing/CMakeFiles/matcn_indexing.dir/stopwords.cc.o" "gcc" "src/indexing/CMakeFiles/matcn_indexing.dir/stopwords.cc.o.d"
  "/root/repo/src/indexing/term_index.cc" "src/indexing/CMakeFiles/matcn_indexing.dir/term_index.cc.o" "gcc" "src/indexing/CMakeFiles/matcn_indexing.dir/term_index.cc.o.d"
  "/root/repo/src/indexing/tokenizer.cc" "src/indexing/CMakeFiles/matcn_indexing.dir/tokenizer.cc.o" "gcc" "src/indexing/CMakeFiles/matcn_indexing.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/matcn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/matcn_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
