# Empty dependencies file for matcn_indexing.
# This may be replaced when dependencies are built.
