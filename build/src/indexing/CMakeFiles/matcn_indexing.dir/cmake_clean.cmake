file(REMOVE_RECURSE
  "CMakeFiles/matcn_indexing.dir/postings.cc.o"
  "CMakeFiles/matcn_indexing.dir/postings.cc.o.d"
  "CMakeFiles/matcn_indexing.dir/stopwords.cc.o"
  "CMakeFiles/matcn_indexing.dir/stopwords.cc.o.d"
  "CMakeFiles/matcn_indexing.dir/term_index.cc.o"
  "CMakeFiles/matcn_indexing.dir/term_index.cc.o.d"
  "CMakeFiles/matcn_indexing.dir/tokenizer.cc.o"
  "CMakeFiles/matcn_indexing.dir/tokenizer.cc.o.d"
  "libmatcn_indexing.a"
  "libmatcn_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcn_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
