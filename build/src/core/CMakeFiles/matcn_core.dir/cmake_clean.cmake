file(REMOVE_RECURSE
  "CMakeFiles/matcn_core.dir/candidate_network.cc.o"
  "CMakeFiles/matcn_core.dir/candidate_network.cc.o.d"
  "CMakeFiles/matcn_core.dir/cn_to_sql.cc.o"
  "CMakeFiles/matcn_core.dir/cn_to_sql.cc.o.d"
  "CMakeFiles/matcn_core.dir/keyword_query.cc.o"
  "CMakeFiles/matcn_core.dir/keyword_query.cc.o.d"
  "CMakeFiles/matcn_core.dir/matcngen.cc.o"
  "CMakeFiles/matcn_core.dir/matcngen.cc.o.d"
  "CMakeFiles/matcn_core.dir/minimal_cover.cc.o"
  "CMakeFiles/matcn_core.dir/minimal_cover.cc.o.d"
  "CMakeFiles/matcn_core.dir/qmgen.cc.o"
  "CMakeFiles/matcn_core.dir/qmgen.cc.o.d"
  "CMakeFiles/matcn_core.dir/single_cn.cc.o"
  "CMakeFiles/matcn_core.dir/single_cn.cc.o.d"
  "CMakeFiles/matcn_core.dir/tsfind.cc.o"
  "CMakeFiles/matcn_core.dir/tsfind.cc.o.d"
  "CMakeFiles/matcn_core.dir/tuple_set.cc.o"
  "CMakeFiles/matcn_core.dir/tuple_set.cc.o.d"
  "CMakeFiles/matcn_core.dir/tuple_set_graph.cc.o"
  "CMakeFiles/matcn_core.dir/tuple_set_graph.cc.o.d"
  "libmatcn_core.a"
  "libmatcn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
