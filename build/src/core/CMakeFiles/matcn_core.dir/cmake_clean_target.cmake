file(REMOVE_RECURSE
  "libmatcn_core.a"
)
