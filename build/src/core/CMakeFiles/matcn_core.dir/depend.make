# Empty dependencies file for matcn_core.
# This may be replaced when dependencies are built.
