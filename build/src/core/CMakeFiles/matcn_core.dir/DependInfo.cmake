
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/candidate_network.cc" "src/core/CMakeFiles/matcn_core.dir/candidate_network.cc.o" "gcc" "src/core/CMakeFiles/matcn_core.dir/candidate_network.cc.o.d"
  "/root/repo/src/core/cn_to_sql.cc" "src/core/CMakeFiles/matcn_core.dir/cn_to_sql.cc.o" "gcc" "src/core/CMakeFiles/matcn_core.dir/cn_to_sql.cc.o.d"
  "/root/repo/src/core/keyword_query.cc" "src/core/CMakeFiles/matcn_core.dir/keyword_query.cc.o" "gcc" "src/core/CMakeFiles/matcn_core.dir/keyword_query.cc.o.d"
  "/root/repo/src/core/matcngen.cc" "src/core/CMakeFiles/matcn_core.dir/matcngen.cc.o" "gcc" "src/core/CMakeFiles/matcn_core.dir/matcngen.cc.o.d"
  "/root/repo/src/core/minimal_cover.cc" "src/core/CMakeFiles/matcn_core.dir/minimal_cover.cc.o" "gcc" "src/core/CMakeFiles/matcn_core.dir/minimal_cover.cc.o.d"
  "/root/repo/src/core/qmgen.cc" "src/core/CMakeFiles/matcn_core.dir/qmgen.cc.o" "gcc" "src/core/CMakeFiles/matcn_core.dir/qmgen.cc.o.d"
  "/root/repo/src/core/single_cn.cc" "src/core/CMakeFiles/matcn_core.dir/single_cn.cc.o" "gcc" "src/core/CMakeFiles/matcn_core.dir/single_cn.cc.o.d"
  "/root/repo/src/core/tsfind.cc" "src/core/CMakeFiles/matcn_core.dir/tsfind.cc.o" "gcc" "src/core/CMakeFiles/matcn_core.dir/tsfind.cc.o.d"
  "/root/repo/src/core/tuple_set.cc" "src/core/CMakeFiles/matcn_core.dir/tuple_set.cc.o" "gcc" "src/core/CMakeFiles/matcn_core.dir/tuple_set.cc.o.d"
  "/root/repo/src/core/tuple_set_graph.cc" "src/core/CMakeFiles/matcn_core.dir/tuple_set_graph.cc.o" "gcc" "src/core/CMakeFiles/matcn_core.dir/tuple_set_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/matcn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/matcn_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/indexing/CMakeFiles/matcn_indexing.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/matcn_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
