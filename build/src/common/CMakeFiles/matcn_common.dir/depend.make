# Empty dependencies file for matcn_common.
# This may be replaced when dependencies are built.
