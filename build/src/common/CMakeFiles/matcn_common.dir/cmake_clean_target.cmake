file(REMOVE_RECURSE
  "libmatcn_common.a"
)
