file(REMOVE_RECURSE
  "CMakeFiles/matcn_common.dir/rng.cc.o"
  "CMakeFiles/matcn_common.dir/rng.cc.o.d"
  "CMakeFiles/matcn_common.dir/status.cc.o"
  "CMakeFiles/matcn_common.dir/status.cc.o.d"
  "CMakeFiles/matcn_common.dir/strings.cc.o"
  "CMakeFiles/matcn_common.dir/strings.cc.o.d"
  "CMakeFiles/matcn_common.dir/table_printer.cc.o"
  "CMakeFiles/matcn_common.dir/table_printer.cc.o.d"
  "libmatcn_common.a"
  "libmatcn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
