# Empty dependencies file for matcn_graph.
# This may be replaced when dependencies are built.
