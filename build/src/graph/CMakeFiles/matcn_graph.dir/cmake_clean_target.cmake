file(REMOVE_RECURSE
  "libmatcn_graph.a"
)
