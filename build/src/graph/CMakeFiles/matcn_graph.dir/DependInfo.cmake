
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/schema_graph.cc" "src/graph/CMakeFiles/matcn_graph.dir/schema_graph.cc.o" "gcc" "src/graph/CMakeFiles/matcn_graph.dir/schema_graph.cc.o.d"
  "/root/repo/src/graph/tree_canonical.cc" "src/graph/CMakeFiles/matcn_graph.dir/tree_canonical.cc.o" "gcc" "src/graph/CMakeFiles/matcn_graph.dir/tree_canonical.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/matcn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/matcn_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
