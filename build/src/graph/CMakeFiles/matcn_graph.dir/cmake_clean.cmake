file(REMOVE_RECURSE
  "CMakeFiles/matcn_graph.dir/schema_graph.cc.o"
  "CMakeFiles/matcn_graph.dir/schema_graph.cc.o.d"
  "CMakeFiles/matcn_graph.dir/tree_canonical.cc.o"
  "CMakeFiles/matcn_graph.dir/tree_canonical.cc.o.d"
  "libmatcn_graph.a"
  "libmatcn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
