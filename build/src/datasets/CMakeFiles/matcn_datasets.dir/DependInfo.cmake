
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/dblp_gen.cc" "src/datasets/CMakeFiles/matcn_datasets.dir/dblp_gen.cc.o" "gcc" "src/datasets/CMakeFiles/matcn_datasets.dir/dblp_gen.cc.o.d"
  "/root/repo/src/datasets/imdb_gen.cc" "src/datasets/CMakeFiles/matcn_datasets.dir/imdb_gen.cc.o" "gcc" "src/datasets/CMakeFiles/matcn_datasets.dir/imdb_gen.cc.o.d"
  "/root/repo/src/datasets/mondial_gen.cc" "src/datasets/CMakeFiles/matcn_datasets.dir/mondial_gen.cc.o" "gcc" "src/datasets/CMakeFiles/matcn_datasets.dir/mondial_gen.cc.o.d"
  "/root/repo/src/datasets/tpch_gen.cc" "src/datasets/CMakeFiles/matcn_datasets.dir/tpch_gen.cc.o" "gcc" "src/datasets/CMakeFiles/matcn_datasets.dir/tpch_gen.cc.o.d"
  "/root/repo/src/datasets/vocab.cc" "src/datasets/CMakeFiles/matcn_datasets.dir/vocab.cc.o" "gcc" "src/datasets/CMakeFiles/matcn_datasets.dir/vocab.cc.o.d"
  "/root/repo/src/datasets/wikipedia_gen.cc" "src/datasets/CMakeFiles/matcn_datasets.dir/wikipedia_gen.cc.o" "gcc" "src/datasets/CMakeFiles/matcn_datasets.dir/wikipedia_gen.cc.o.d"
  "/root/repo/src/datasets/workload.cc" "src/datasets/CMakeFiles/matcn_datasets.dir/workload.cc.o" "gcc" "src/datasets/CMakeFiles/matcn_datasets.dir/workload.cc.o.d"
  "/root/repo/src/datasets/workload_io.cc" "src/datasets/CMakeFiles/matcn_datasets.dir/workload_io.cc.o" "gcc" "src/datasets/CMakeFiles/matcn_datasets.dir/workload_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/matcn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/matcn_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/matcn_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/matcn_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/indexing/CMakeFiles/matcn_indexing.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/matcn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/matcn_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/matcn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
