file(REMOVE_RECURSE
  "CMakeFiles/matcn_datasets.dir/dblp_gen.cc.o"
  "CMakeFiles/matcn_datasets.dir/dblp_gen.cc.o.d"
  "CMakeFiles/matcn_datasets.dir/imdb_gen.cc.o"
  "CMakeFiles/matcn_datasets.dir/imdb_gen.cc.o.d"
  "CMakeFiles/matcn_datasets.dir/mondial_gen.cc.o"
  "CMakeFiles/matcn_datasets.dir/mondial_gen.cc.o.d"
  "CMakeFiles/matcn_datasets.dir/tpch_gen.cc.o"
  "CMakeFiles/matcn_datasets.dir/tpch_gen.cc.o.d"
  "CMakeFiles/matcn_datasets.dir/vocab.cc.o"
  "CMakeFiles/matcn_datasets.dir/vocab.cc.o.d"
  "CMakeFiles/matcn_datasets.dir/wikipedia_gen.cc.o"
  "CMakeFiles/matcn_datasets.dir/wikipedia_gen.cc.o.d"
  "CMakeFiles/matcn_datasets.dir/workload.cc.o"
  "CMakeFiles/matcn_datasets.dir/workload.cc.o.d"
  "CMakeFiles/matcn_datasets.dir/workload_io.cc.o"
  "CMakeFiles/matcn_datasets.dir/workload_io.cc.o.d"
  "libmatcn_datasets.a"
  "libmatcn_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcn_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
