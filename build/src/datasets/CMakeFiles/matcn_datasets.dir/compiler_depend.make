# Empty compiler generated dependencies file for matcn_datasets.
# This may be replaced when dependencies are built.
