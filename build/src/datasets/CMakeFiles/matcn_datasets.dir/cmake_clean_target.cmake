file(REMOVE_RECURSE
  "libmatcn_datasets.a"
)
