file(REMOVE_RECURSE
  "libmatcn_datagraph.a"
)
