# Empty compiler generated dependencies file for matcn_datagraph.
# This may be replaced when dependencies are built.
