file(REMOVE_RECURSE
  "CMakeFiles/matcn_datagraph.dir/banks.cc.o"
  "CMakeFiles/matcn_datagraph.dir/banks.cc.o.d"
  "CMakeFiles/matcn_datagraph.dir/data_graph.cc.o"
  "CMakeFiles/matcn_datagraph.dir/data_graph.cc.o.d"
  "CMakeFiles/matcn_datagraph.dir/dpbf.cc.o"
  "CMakeFiles/matcn_datagraph.dir/dpbf.cc.o.d"
  "libmatcn_datagraph.a"
  "libmatcn_datagraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcn_datagraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
